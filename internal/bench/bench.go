// Package bench regenerates every table and figure of the paper's
// evaluation (DESIGN.md §5 maps each experiment to its module). Each
// Fig/Sec function runs one experiment — on the round-based simulator
// for the paper's cluster measurements, or on the real concurrent
// implementation over the in-memory transport for the async validation —
// and returns a rendered table with the same rows/series the paper
// reports.
package bench

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/simstore"
	"repro/internal/stats"
)

// Experiment is one regenerated table or figure.
type Experiment struct {
	// ID names the paper artifact ("fig3a", "sec4.1", ...).
	ID string
	// Title is the human-readable caption.
	Title string
	// Table holds the regenerated rows.
	Table stats.Table
	// Notes records deviations and interpretation (also summarized in
	// EXPERIMENTS.md).
	Notes string
}

// ServerCounts is the sweep the paper uses in Figures 3 and 4.
var ServerCounts = []int{2, 3, 4, 5, 6, 7, 8}

// simRun executes one ring deployment and returns its metrics plus
// network stats.
type simRun struct {
	m  *simstore.Metrics
	st netsim.Stats
}

// runRingSim builds and runs a ring deployment: n servers, the given
// reader/writer clients per server with their pipelines, for the given
// rounds (with warmup).
func runRingSim(cfg simstore.RingConfig, n, readersPer, readPipe, writersPer, writePipe, rounds, warmup int) simRun {
	cal := netsim.DefaultCalibration()
	m := &simstore.Metrics{WarmupRounds: warmup}
	ring := make([]int, n)
	for i := range ring {
		ring[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range ring {
		procs = append(procs, &simstore.RingServer{IDNum: id, Ring: ring, Cal: cal, Cfg: cfg})
	}
	next := 1000
	for _, id := range ring {
		for r := 0; r < readersPer; r++ {
			next++
			procs = append(procs, &simstore.Client{IDNum: next, Server: id, Reads: true, Pipeline: readPipe, Cal: cal, M: m})
		}
		for w := 0; w < writersPer; w++ {
			next++
			procs = append(procs, &simstore.Client{IDNum: next, Server: id, Reads: false, Pipeline: writePipe, Cal: cal, M: m})
		}
	}
	sim := netsim.MustNew(netsim.Config{SharedNetwork: cfg.SharedNetwork}, procs...)
	sim.Run(rounds)
	m.Finish(rounds)
	return simRun{m: m, st: sim.Stats()}
}

// Fig1 reproduces the motivating comparison: algorithm A (majority-based
// reads) versus algorithm B (local reads) on three servers.
func Fig1() Experiment {
	cal := netsim.DefaultCalibration()
	table := stats.Table{
		Title:   "Figure 1 — read throughput and latency, 3 servers (round model)",
		Columns: []string{"algorithm", "latency (rounds)", "throughput (ops/round)"},
	}

	for _, algo := range []string{"A (majority)", "B (local reads)"} {
		local := algo[0] == 'B'
		saturated := runFig1(cal, local, 4, 600, 100)
		isolated := runFig1(cal, local, 1, 200, 0)
		table.AddRow(algo,
			fmt.Sprintf("%.0f", isolated.MeanReadLatency()),
			fmt.Sprintf("%.2f", saturated.ReadRate()))
	}
	return Experiment{
		ID:    "fig1",
		Title: "Figure 1: why local reads beat quorum reads on throughput",
		Table: table,
		Notes: "The paper's stylized diagram draws both latencies as 4 rounds; " +
			"under the §2 round model a local read costs 2 rounds (one client " +
			"round trip, §4.1), so B is reported at 2. The discriminating claim — " +
			"B matches A's latency class while tripling read throughput — holds.",
	}
}

// runFig1 runs one of the two Figure-1 algorithms with one reader client
// per server at the given pipeline depth.
func runFig1(cal netsim.Calibration, localReads bool, pipeline, rounds, warmup int) *simstore.Metrics {
	m := &simstore.Metrics{WarmupRounds: warmup}
	ring := []int{1, 2, 3}
	var procs []netsim.Process
	for _, id := range ring {
		if localReads {
			procs = append(procs, &simstore.AlgoBServer{IDNum: id, Cal: cal})
		} else {
			procs = append(procs, &simstore.AlgoAServer{IDNum: id, Ring: ring, Cal: cal})
		}
	}
	for i, id := range ring {
		procs = append(procs, &simstore.Client{IDNum: 1000 + i, Server: id, Reads: true, Pipeline: pipeline, Cal: cal, M: m})
	}
	sim := netsim.MustNew(netsim.Config{SharedNetwork: true}, procs...)
	sim.Run(rounds)
	m.Finish(rounds)
	return m
}

// Sec41Latency reproduces the analytical latency results of §4.1: reads
// take 2 rounds, writes take 2N+2 rounds.
func Sec41Latency() Experiment {
	table := stats.Table{
		Title:   "Section 4.1 — isolated operation latency (rounds)",
		Columns: []string{"servers", "read measured", "read expected", "write measured", "write expected"},
	}
	for _, n := range ServerCounts {
		reads := runRingSim(simstore.RingConfig{}, n, 1, 1, 0, 0, 300, 0)
		writes := runRingSim(simstore.RingConfig{}, n, 0, 0, 1, 1, 40*(2*n+2), 0)
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", reads.m.MeanReadLatency()),
			"2",
			fmt.Sprintf("%.0f", writes.m.MeanWriteLatency()),
			fmt.Sprint(2*n+2),
		)
	}
	return Experiment{
		ID:    "sec4.1",
		Title: "Section 4.1: latency formulae hold exactly in the round model",
		Table: table,
	}
}

// Sec42Throughput reproduces the analytical throughput results of §4.2:
// saturated writes complete at 1 op/round independent of n; saturated
// reads complete at n ops/round.
func Sec42Throughput() Experiment {
	table := stats.Table{
		Title:   "Section 4.2 — saturated throughput (ops/round)",
		Columns: []string{"servers", "write rate", "write expected", "read rate", "read expected"},
	}
	for _, n := range ServerCounts {
		writes := runRingSim(simstore.RingConfig{}, n, 0, 0, 2, 2, 1500, 400)
		reads := runRingSim(simstore.RingConfig{}, n, 2, 2, 0, 0, 800, 200)
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", writes.m.WriteRate()),
			"1",
			fmt.Sprintf("%.2f", reads.m.ReadRate()),
			fmt.Sprint(n),
		)
	}
	return Experiment{
		ID:    "sec4.2",
		Title: "Section 4.2: write throughput constant, read throughput linear",
		Table: table,
	}
}

// Fig3a reproduces the read-throughput-without-contention chart: total
// read Mbit/s versus server count, two reader clients per server.
func Fig3a() Experiment {
	cal := netsim.DefaultCalibration()
	table := stats.Table{
		Title:   "Figure 3a — total read throughput, no contention (Mbit/s)",
		Columns: []string{"servers", "total read Mbit/s", "per server", "paper per server"},
	}
	for _, n := range ServerCounts {
		run := runRingSim(simstore.RingConfig{}, n, 2, 2, 0, 0, 1200, 300)
		mbps := cal.ThroughputMbps(run.m.ReadRate(), run.st.BottleneckBytesPerRound())
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", mbps),
			fmt.Sprintf("%.0f", mbps/float64(n)),
			"~90",
		)
	}
	return Experiment{
		ID:    "fig3a",
		Title: "Figure 3a: read throughput grows linearly, ~90 Mbit/s per server",
		Table: table,
	}
}

// Fig3b reproduces the write-throughput-without-contention chart.
func Fig3b() Experiment {
	cal := netsim.DefaultCalibration()
	table := stats.Table{
		Title:   "Figure 3b — total write throughput, no contention (Mbit/s)",
		Columns: []string{"servers", "total write Mbit/s", "paper"},
	}
	for _, n := range ServerCounts {
		run := runRingSim(simstore.RingConfig{}, n, 0, 0, 2, 2, 1500, 400)
		mbps := cal.ThroughputMbps(run.m.WriteRate(), run.st.BottleneckBytesPerRound())
		table.AddRow(fmt.Sprint(n), fmt.Sprintf("%.0f", mbps), "~80 (flat)")
	}
	return Experiment{
		ID:    "fig3b",
		Title: "Figure 3b: write throughput flat around 80 Mbit/s regardless of n",
		Table: table,
	}
}

// Fig3c reproduces the contention-on-separate-networks chart: a dedicated
// reader and a dedicated writer per server.
func Fig3c() Experiment {
	return contendedFigure("fig3c", "Figure 3c — read & write throughput under contention, separate networks (Mbit/s)", false)
}

// Fig3d reproduces the contention-on-a-shared-network chart.
func Fig3d() Experiment {
	return contendedFigure("fig3d", "Figure 3d — read & write throughput under contention, shared network (Mbit/s)", true)
}

// contendedFigure runs the Figure 3c/3d workload: one reader and one
// writer client per server, deep pipelines (the paper's client machines
// emulate many clients; contended reads wait out the pre-write barrier,
// so by Little's law the pipeline must exceed that latency).
func contendedFigure(id, title string, shared bool) Experiment {
	cal := netsim.DefaultCalibration()
	table := stats.Table{
		Title:   title,
		Columns: []string{"servers", "total read Mbit/s", "read per server", "total write Mbit/s"},
	}
	cfg := simstore.RingConfig{SharedNetwork: shared}
	for _, n := range ServerCounts {
		run := runRingSim(cfg, n, 1, max(24, 6*n), 1, max(16, 2*n), 4000, 1000)
		readM := cal.ThroughputMbps(run.m.ReadRate(), run.st.BottleneckBytesPerRound())
		writeM := cal.ThroughputMbps(run.m.WriteRate(), run.st.BottleneckBytesPerRound())
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", readM),
			fmt.Sprintf("%.0f", readM/float64(n)),
			fmt.Sprintf("%.0f", writeM),
		)
	}
	notes := "Paper: write flat ~80, read linear at ~76/server (15% below 3a)."
	if shared {
		notes = "Paper: write flat ~45, read linear at ~31/server (~76 Mbit/s per server NIC in total)."
	}
	return Experiment{ID: id, Title: title, Table: table, Notes: notes}
}

// Fig4 reproduces the latency chart: write latency grows linearly with
// the ring size, read latency is a constant single round trip.
func Fig4() Experiment {
	cal := netsim.DefaultCalibration()
	table := stats.Table{
		Title:   "Figure 4 — isolated operation latency (ms at 100 Mbit/s, 1 KiB values)",
		Columns: []string{"servers", "read ms", "write ms", "write rounds (2N+2)"},
	}
	for _, n := range ServerCounts {
		reads := runRingSim(simstore.RingConfig{}, n, 1, 1, 0, 0, 300, 0)
		writes := runRingSim(simstore.RingConfig{}, n, 0, 0, 1, 1, 40*(2*n+2), 0)
		// Isolated ops do not saturate any link; convert rounds to time
		// at the nominal payload-frame rate.
		bb := float64(cal.PayloadFrameBytes())
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.3f", cal.LatencyMillis(reads.m.MeanReadLatency(), bb)),
			fmt.Sprintf("%.3f", cal.LatencyMillis(writes.m.MeanWriteLatency(), bb)),
			fmt.Sprint(2*n+2),
		)
	}
	return Experiment{
		ID:    "fig4",
		Title: "Figure 4: write latency linear in n, read latency constant",
		Table: table,
		Notes: "Absolute milliseconds differ from the paper's Itanium cluster; the shape (linear vs constant) is the reproduced result.",
	}
}

// Comparison reproduces the paper's §4.2 comparison against quorum-,
// chain- and TOB-based storage: saturated read and write rates per
// algorithm across server counts.
func Comparison() Experiment {
	table := stats.Table{
		Title:   "Section 4.2 comparison — saturated ops/round by algorithm",
		Columns: []string{"servers", "ring reads", "ring writes", "quorum reads", "chain reads", "chain writes", "tob total"},
	}
	for _, n := range []int{3, 5, 7} {
		ring := runRingSim(simstore.RingConfig{}, n, 2, 2, 0, 0, 800, 200)
		ringW := runRingSim(simstore.RingConfig{}, n, 0, 0, 2, 2, 1500, 400)
		quorum := runQuorumSim(n, 2, 2, 1000, 200)
		chainR := runChainSim(n, 4, 0, 800, 200)
		chainW := runChainSim(n, 0, 3, 800, 200)
		tob := runTOBSim(n, 2, 1000, 200)
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", ring.m.ReadRate()),
			fmt.Sprintf("%.2f", ringW.m.WriteRate()),
			fmt.Sprintf("%.2f", quorum.ReadRate()),
			fmt.Sprintf("%.2f", chainR.ReadRate()),
			fmt.Sprintf("%.2f", chainW.WriteRate()),
			fmt.Sprintf("%.2f", tob.ReadRate()+tob.WriteRate()),
		)
	}
	return Experiment{
		ID:    "cmp",
		Title: "Baselines: only the ring's reads scale with n",
		Table: table,
		Notes: "Quorum reads stay flat (every op consumes ingress at a majority); chain reads are pinned to the tail; TOB orders reads too, sharing one pipeline.",
	}
}

// runQuorumSim runs the round-model quorum deployment.
func runQuorumSim(n, readersPer, pipeline, rounds, warmup int) *simstore.Metrics {
	cal := netsim.DefaultCalibration()
	m := &simstore.Metrics{WarmupRounds: warmup}
	servers := make([]int, n)
	for i := range servers {
		servers[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range servers {
		procs = append(procs, &simstore.QuorumServer{IDNum: id, Servers: servers, Cal: cal})
	}
	next := 1000
	for _, id := range servers {
		for r := 0; r < readersPer; r++ {
			next++
			procs = append(procs, &simstore.Client{IDNum: next, Server: id, Reads: true, Pipeline: pipeline, Cal: cal, M: m})
		}
	}
	sim := netsim.MustNew(netsim.Config{}, procs...)
	sim.Run(rounds)
	m.Finish(rounds)
	return m
}

// runChainSim runs the round-model chain deployment.
func runChainSim(n, readers, writers, rounds, warmup int) *simstore.Metrics {
	cal := netsim.DefaultCalibration()
	m := &simstore.Metrics{WarmupRounds: warmup}
	chain := make([]int, n)
	for i := range chain {
		chain[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range chain {
		procs = append(procs, &simstore.ChainServer{IDNum: id, Chain: chain, Cal: cal})
	}
	next := 1000
	for r := 0; r < readers; r++ {
		next++
		procs = append(procs, &simstore.Client{IDNum: next, Server: chain[n-1], Reads: true, Pipeline: 2, Cal: cal, M: m})
	}
	for w := 0; w < writers; w++ {
		next++
		procs = append(procs, &simstore.Client{IDNum: next, Server: chain[0], Reads: false, Pipeline: max(4, n), Cal: cal, M: m})
	}
	sim := netsim.MustNew(netsim.Config{}, procs...)
	sim.Run(rounds)
	m.Finish(rounds)
	return m
}

// runTOBSim runs the round-model TOB deployment with mixed load.
func runTOBSim(n, pipeline, rounds, warmup int) *simstore.Metrics {
	cal := netsim.DefaultCalibration()
	m := &simstore.Metrics{WarmupRounds: warmup}
	ring := make([]int, n)
	for i := range ring {
		ring[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range ring {
		procs = append(procs, &simstore.TOBServer{IDNum: id, Ring: ring, Cal: cal})
	}
	next := 1000
	for _, id := range ring {
		next++
		procs = append(procs, &simstore.Client{IDNum: next, Server: id, Reads: true, Pipeline: pipeline, Cal: cal, M: m})
		next++
		procs = append(procs, &simstore.Client{IDNum: next, Server: id, Reads: false, Pipeline: pipeline, Cal: cal, M: m})
	}
	sim := netsim.MustNew(netsim.Config{}, procs...)
	sim.Run(rounds)
	m.Finish(rounds)
	return m
}

// Ablations regenerates the design-choice benches of DESIGN.md §5:
// piggybacking, fairness, pending mode, value elision.
func Ablations() Experiment {
	table := stats.Table{
		Title:   "Ablations — saturated write rate (ops/round), 4 servers",
		Columns: []string{"variant", "write rate", "read rate under contention"},
	}
	variants := []struct {
		name string
		cfg  simstore.RingConfig
	}{
		{"paper configuration", simstore.RingConfig{}},
		{"no piggybacking", simstore.RingConfig{DisablePiggyback: true}},
		{"no value elision", simstore.RingConfig{DisableValueElision: true}},
		{"fifo (no fairness)", simstore.RingConfig{DisableFairness: true}},
	}
	const n = 4
	for _, v := range variants {
		w := runRingSim(v.cfg, n, 0, 0, 2, 2, 1500, 400)
		mixed := runRingSim(v.cfg, n, 1, 6*n, 1, 2*n, 4000, 1000)
		table.AddRow(
			v.name,
			fmt.Sprintf("%.2f", w.m.WriteRate()),
			fmt.Sprintf("%.2f", mixed.m.ReadRate()),
		)
	}
	return Experiment{
		ID:    "ablations",
		Title: "Ablations: each mechanism's contribution",
		Table: table,
		Notes: "No-piggybacking halves write completions; no-elision doubles ring payload bytes (visible as Mbit/s, not ops/round); FIFO forwarding starves local writers under load.",
	}
}

// Collisions reproduces the paper's §1 argument for the ring pattern:
// broadcasting writes triggers simultaneous replies that collide at the
// coordinator's interface, and the retransmissions collapse write
// throughput; the ring, whose links each have a single sender, is immune
// to the collision model.
func Collisions() Experiment {
	table := stats.Table{
		Title:   "§1 collision argument — saturated write rate (ops/round), 5 servers",
		Columns: []string{"algorithm", "switched network", "collision domain", "retransmissions"},
	}
	const n, rounds, warmup = 5, 2000, 400

	runBcast := func(policy netsim.IngressPolicy) (*simstore.Metrics, netsim.Stats) {
		cal := netsim.DefaultCalibration()
		m := &simstore.Metrics{WarmupRounds: warmup}
		servers := make([]int, n)
		for i := range servers {
			servers[i] = i + 1
		}
		var procs []netsim.Process
		for _, id := range servers {
			procs = append(procs, &simstore.BroadcastServer{IDNum: id, Servers: servers, Cal: cal})
		}
		next := 1000
		for _, id := range servers {
			for w := 0; w < 2; w++ {
				next++
				procs = append(procs, &simstore.Client{IDNum: next, Server: id, Reads: false, Pipeline: 4, Cal: cal, M: m})
			}
		}
		sim := netsim.MustNew(netsim.Config{Ingress: policy}, procs...)
		sim.Run(rounds)
		m.Finish(rounds)
		return m, sim.Stats()
	}
	runRing := func(policy netsim.IngressPolicy) (*simstore.Metrics, netsim.Stats) {
		cal := netsim.DefaultCalibration()
		m := &simstore.Metrics{WarmupRounds: warmup}
		ring := make([]int, n)
		for i := range ring {
			ring[i] = i + 1
		}
		var procs []netsim.Process
		for _, id := range ring {
			procs = append(procs, &simstore.RingServer{IDNum: id, Ring: ring, Cal: cal})
		}
		next := 1000
		for _, id := range ring {
			for w := 0; w < 2; w++ {
				next++
				procs = append(procs, &simstore.Client{IDNum: next, Server: id, Reads: false, Pipeline: 2, Cal: cal, M: m})
			}
		}
		sim := netsim.MustNew(netsim.Config{Ingress: policy}, procs...)
		sim.Run(rounds)
		m.Finish(rounds)
		return m, sim.Stats()
	}

	bs, _ := runBcast(netsim.IngressSerialize)
	bc, bst := runBcast(netsim.IngressCollide)
	rs, _ := runRing(netsim.IngressSerialize)
	rc, rst := runRing(netsim.IngressCollide)
	table.AddRow("broadcast writes (strawman)",
		fmt.Sprintf("%.2f", bs.WriteRate()),
		fmt.Sprintf("%.2f", bc.WriteRate()),
		fmt.Sprint(bst.Retransmissions))
	table.AddRow("ring (paper)",
		fmt.Sprintf("%.2f", rs.WriteRate()),
		fmt.Sprintf("%.2f", rc.WriteRate()),
		fmt.Sprint(rst.Retransmissions))
	return Experiment{
		ID:    "collisions",
		Title: "§1: broadcast writes collapse under collisions, the ring does not",
		Table: table,
		Notes: "The ring's point-to-point pattern has a single sender per link, so the collision model never triggers on server links.",
	}
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		Fig1(),
		Sec41Latency(),
		Sec42Throughput(),
		Fig3a(),
		Fig3b(),
		Fig3c(),
		Fig3d(),
		Fig4(),
		Comparison(),
		Ablations(),
		Collisions(),
	}
}

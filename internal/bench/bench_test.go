package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

func cell(t *testing.T, e Experiment, row, col int) float64 {
	t.Helper()
	if row >= len(e.Table.Rows) || col >= len(e.Table.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in table:\n%s", e.ID, row, col, e.Table.String())
	}
	raw := strings.TrimSuffix(e.Table.Rows[row][col], "x")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", e.ID, row, col, raw)
	}
	return v
}

func TestFig1Shapes(t *testing.T) {
	e := Fig1()
	latA, tputA := cell(t, e, 0, 1), cell(t, e, 0, 2)
	latB, tputB := cell(t, e, 1, 1), cell(t, e, 1, 2)
	if latA != 4 || latB != 2 {
		t.Fatalf("latencies A=%v B=%v, want 4 and 2", latA, latB)
	}
	if tputB < 2.5*tputA {
		t.Fatalf("B's throughput %v not ~3x A's %v", tputB, tputA)
	}
}

func TestSec41ExactFormulae(t *testing.T) {
	e := Sec41Latency()
	for i, n := range ServerCounts {
		if got := cell(t, e, i, 1); got != 2 {
			t.Fatalf("n=%d: read latency %v, want 2", n, got)
		}
		if got := cell(t, e, i, 3); got != float64(2*n+2) {
			t.Fatalf("n=%d: write latency %v, want %d", n, got, 2*n+2)
		}
	}
}

func TestSec42ExactRates(t *testing.T) {
	e := Sec42Throughput()
	for i, n := range ServerCounts {
		if got := cell(t, e, i, 1); got < 0.9 || got > 1.1 {
			t.Fatalf("n=%d: write rate %v, want ~1", n, got)
		}
		if got := cell(t, e, i, 3); got < 0.95*float64(n) {
			t.Fatalf("n=%d: read rate %v, want ~%d", n, got, n)
		}
	}
}

func TestFig3aLinearReads(t *testing.T) {
	e := Fig3a()
	perServer := cell(t, e, 0, 2)
	if perServer < 80 || perServer > 95 {
		t.Fatalf("per-server read Mbit/s = %v, want ~89", perServer)
	}
	// Linearity: total at n=8 ~4x total at n=2.
	total2, total8 := cell(t, e, 0, 1), cell(t, e, len(ServerCounts)-1, 1)
	if ratio := total8 / total2; ratio < 3.6 || ratio > 4.4 {
		t.Fatalf("8-vs-2 server scaling = %v, want ~4", ratio)
	}
}

func TestFig3bFlatWrites(t *testing.T) {
	e := Fig3b()
	first := cell(t, e, 0, 1)
	if first < 70 || first > 90 {
		t.Fatalf("write Mbit/s = %v, want ~80", first)
	}
	for i := range ServerCounts {
		got := cell(t, e, i, 1)
		if got < 0.9*first || got > 1.1*first {
			t.Fatalf("write throughput not flat: row %d = %v vs %v", i, got, first)
		}
	}
}

func TestFig3cShapes(t *testing.T) {
	e := Fig3c()
	last := len(ServerCounts) - 1
	// Writes flat ~80 at scale.
	if got := cell(t, e, last, 3); got < 70 {
		t.Fatalf("contended writes = %v, want ~80", got)
	}
	// Reads grow with n.
	if cell(t, e, last, 1) < 2*cell(t, e, 0, 1) {
		t.Fatal("contended reads did not scale with servers")
	}
}

func TestFig3dSharedNetwork(t *testing.T) {
	e := Fig3d()
	last := len(ServerCounts) - 1
	w := cell(t, e, last, 3)
	if w < 30 || w > 60 {
		t.Fatalf("shared-network writes = %v, want ~45", w)
	}
	// Both classes substantially below the dedicated-network rates.
	if cell(t, e, last, 2) > 60 {
		t.Fatalf("shared-network per-server reads = %v, expected well below 89", cell(t, e, last, 2))
	}
}

func TestFig4Shapes(t *testing.T) {
	e := Fig4()
	reads0 := cell(t, e, 0, 1)
	for i := range ServerCounts {
		if got := cell(t, e, i, 1); got != reads0 {
			t.Fatalf("read latency not constant: %v vs %v", got, reads0)
		}
	}
	// Write latency strictly increasing.
	prev := 0.0
	for i := range ServerCounts {
		got := cell(t, e, i, 2)
		if got <= prev {
			t.Fatalf("write latency not increasing at row %d: %v after %v", i, got, prev)
		}
		prev = got
	}
}

func TestComparisonShapes(t *testing.T) {
	e := Comparison()
	lastRow := len(e.Table.Rows) - 1
	// Ring reads scale with n; every baseline's reads stay ~flat.
	if cell(t, e, lastRow, 1) < 2*cell(t, e, 0, 1) {
		t.Fatal("ring reads did not scale in comparison")
	}
	if cell(t, e, lastRow, 3) > 1.5*cell(t, e, 0, 3) {
		t.Fatal("quorum reads scaled; they must not")
	}
	if cell(t, e, lastRow, 4) > 1.2 {
		t.Fatal("chain reads exceeded the single-tail bound")
	}
	if total := cell(t, e, lastRow, 6); total > 1.2 {
		t.Fatalf("tob total rate = %v, want ~1", total)
	}
}

func TestAblationsShapes(t *testing.T) {
	e := Ablations()
	baseline := cell(t, e, 0, 1)
	noPiggy := cell(t, e, 1, 1)
	if ratio := noPiggy / baseline; ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("no-piggyback ratio = %v, want ~0.5", ratio)
	}
}

func TestCollisionsShapes(t *testing.T) {
	e := Collisions()
	bcastSwitched, bcastCollide := cell(t, e, 0, 1), cell(t, e, 0, 2)
	ringSwitched, ringCollide := cell(t, e, 1, 1), cell(t, e, 1, 2)
	if bcastCollide > 0.85*bcastSwitched {
		t.Fatalf("broadcast unharmed by collisions: %v vs %v", bcastCollide, bcastSwitched)
	}
	if ringCollide < 0.95*ringSwitched {
		t.Fatalf("ring harmed by collisions: %v vs %v", ringCollide, ringSwitched)
	}
}

func TestAllIncludesEveryExperiment(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || len(e.Table.Rows) == 0 {
			t.Fatalf("experiment %q empty", e.Title)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "sec4.1", "sec4.2", "fig3a", "fig3b", "fig3c", "fig3d", "fig4", "cmp", "ablations", "collisions"} {
		if !ids[want] {
			t.Fatalf("experiment %q missing from All()", want)
		}
	}
}

func TestMeasureWALRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("pays real fsyncs")
	}
	st, err := MeasureWAL(32, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppendAllocsPerOp != 0 {
		t.Fatalf("wal append path allocates: %d allocs/op", st.AppendAllocsPerOp)
	}
	for _, row := range []struct {
		name string
		r    WALSyncRow
	}{{"per-envelope", st.PerEnvelope}, {"per-train", st.PerTrain}, {"interval", st.Interval}} {
		if row.r.RecsPerSec <= 0 {
			t.Fatalf("%s: recs/s = %v", row.name, row.r.RecsPerSec)
		}
	}
	// Group commit must not be slower than fsync-per-record by more
	// than noise; on any real disk it is several times faster.
	if st.PerTrain.SyncsPerSec > 0 && st.PerEnvelope.SyncsPerSec > 0 &&
		st.PerTrain.BytesPerSync <= st.PerEnvelope.BytesPerSync {
		t.Fatalf("per-train batches (%v bytes/sync) no larger than per-envelope (%v)",
			st.PerTrain.BytesPerSync, st.PerEnvelope.BytesPerSync)
	}
}

func TestAsyncValidationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("async validation is wall-clock bound")
	}
	ctx := context.Background()
	reads, err := AsyncReadScaling(ctx, []int{2, 3}, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(reads.Table.Rows))
	}
	if cell(t, reads, 0, 1) <= 0 {
		t.Fatal("async read rate not positive")
	}
	writes, err := AsyncWriteThroughput(ctx, []int{2}, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, writes, 0, 1) <= 0 {
		t.Fatal("async write rate not positive")
	}
}

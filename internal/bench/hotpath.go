package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tag"
	"repro/internal/tcpnet"
	"repro/internal/wire"
)

// HotpathReport captures the transport/codec microbenchmarks tracked
// across PRs in BENCH_hotpath.json (regenerate with
// `atomicstore-bench -hotpath`). The three sections mirror the three
// hot-path optimizations: the pooled codec, the coalescing TCP writer,
// and the sharded per-object server state.
type HotpathReport struct {
	// GoVersion and GoMaxProcs identify the measuring host well enough
	// to compare runs.
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Wire         WireCodecStats    `json:"wire_codec"`
	Egress       EgressStats       `json:"egress"`
	TCPEcho      TCPEchoStats      `json:"tcp_echo"`
	PendingSet   PendingSetStats   `json:"pending_set"`
	ReadPath     ReadPathStats     `json:"read_path"`
	MultiObject  MultiObjectStats  `json:"multi_object"`
	LaneScaling  LaneScalingStats  `json:"lane_scaling"`
	TrainScaling TrainScalingStats `json:"train_scaling"`
	AckPath      AckPathStats      `json:"ack_path"`
	OpenLoop     OpenLoopStats     `json:"open_loop"`
	Federation   FederationStats   `json:"federation"`
	WAL          WALHotStats       `json:"wal"`
}

// Sizing for the WAL group-commit sweep: enough records that the
// per-envelope fsync column is a real measurement, few enough that a
// slow CI disk finishes it in seconds. The train length matches the
// ring's default frame train.
const (
	walSweepRecords  = 512
	walSweepTrainLen = 8
	walSweepValue    = 1024
)

// Fleet sizing for the ack-path sections: large enough that the single
// shared ackLoop demonstrably serializes (>= 1k destinations), small
// enough that a CI runner sets it up in well under a second. The
// offered rate is one both ack paths sustain on a single core, so the
// open-loop rows compare delivery delay rather than capacity.
const (
	ackPathFleetClients = 1200
	ackPathOfferedRate  = 40000
)

// PendingSetStats reports the sorted pending set's steady-state
// add/prune cycle (the per-committed-envelope churn of a saturated
// lane) at several depths, plus the O(1) maxPending query. Allocs must
// be 0 at every depth; -hotpath-strict enforces it.
type PendingSetStats struct {
	AddPruneNsPerOpDepth1  float64 `json:"add_prune_ns_per_op_depth1"`
	AddPruneNsPerOpDepth8  float64 `json:"add_prune_ns_per_op_depth8"`
	AddPruneNsPerOpDepth64 float64 `json:"add_prune_ns_per_op_depth64"`
	// AddPruneAllocsPerOp is the worst allocs/op across the depths.
	AddPruneAllocsPerOp int64 `json:"add_prune_allocs_per_op"`
	// MaxPendingNsPerOp is the read barrier's maxPending query at depth
	// 64 (a full map scan before the sorted set; now one slice index).
	MaxPendingNsPerOp float64 `json:"max_pending_ns_per_op"`
}

// ReadPathStats compares the read admission decision lock-free (one
// snapshot load) against the locked path it replaced. The fast path
// must not allocate; -hotpath-strict enforces it.
type ReadPathStats struct {
	LockFreeNsPerOp     float64 `json:"lock_free_ns_per_op"`
	LockFreeAllocsPerOp int64   `json:"lock_free_allocs_per_op"`
	LockedNsPerOp       float64 `json:"locked_ns_per_op"`
	// Speedup is locked/lock-free time per decision (uncontended; the
	// real win is the absence of contention, which multi_object shows).
	Speedup float64 `json:"speedup"`
}

// WireCodecStats reports the pooled encode/decode round trip.
type WireCodecStats struct {
	// EncodeNsPerOp and EncodeAllocsPerOp measure Frame.AppendTo into a
	// reused buffer (1 KiB payload plus elided piggyback).
	EncodeNsPerOp     float64 `json:"encode_ns_per_op"`
	EncodeAllocsPerOp int64   `json:"encode_allocs_per_op"`
	// RoundTripNsPerOp and RoundTripAllocsPerOp add the aliasing
	// DecodeFrom into a reused Frame. Steady state must be 0 allocs.
	RoundTripNsPerOp     float64 `json:"round_trip_ns_per_op"`
	RoundTripAllocsPerOp int64   `json:"round_trip_allocs_per_op"`
	// MBPerSec is the round-trip encode+decode goodput.
	MBPerSec float64 `json:"mb_per_sec"`
}

// TCPEchoStats compares the coalescing writer against the
// flush-per-frame baseline on a loopback echo.
type TCPEchoStats struct {
	Messages            int     `json:"messages"`
	PayloadBytes        int     `json:"payload_bytes"`
	CoalescedMsgsPerSec float64 `json:"coalesced_msgs_per_sec"`
	UnbatchedMsgsPerSec float64 `json:"unbatched_msgs_per_sec"`
	// Speedup is coalesced/unbatched; the acceptance bar is >= 1.5.
	Speedup float64 `json:"speedup"`
}

// MultiObjectStats compares multi-object read throughput of the sharded
// server (read-path workers + shard locks, lane-sharded write path)
// against the inline single-goroutine baseline (no read workers, one
// lane — the pre-sharding server). Closed-loop load makes the read and
// write rates trade off, so ShardedWritesPerSec is reported alongside:
// the sharded server completes orders of magnitude more writes in the
// same window, which costs it read completions.
type MultiObjectStats struct {
	Servers             int     `json:"servers"`
	Objects             int     `json:"objects"`
	Seconds             float64 `json:"seconds"`
	ShardedReadsPerSec  float64 `json:"sharded_reads_per_sec"`
	ShardedWritesPerSec float64 `json:"sharded_writes_per_sec"`
	InlineReadsPerSec   float64 `json:"inline_reads_per_sec"`
	// ReadSpeedup is sharded/inline read throughput.
	ReadSpeedup float64 `json:"read_speedup"`
}

// LaneScalingStats compares multi-object write throughput of the
// lane-sharded ring write path (L=4) against the single-loop baseline
// (L=1) on the in-memory transport: the PR-2 tentpole metric. The
// headline row is the contended workload (1 writer + 2 readers per
// object), where the single event loop dispatches every read and every
// object's ring traffic and write completions collapse — exactly the
// cap the lanes remove. The write-only row is reported for honesty: on
// a single-core host it is pure CPU with nothing to overlap, so lanes
// are neutral-to-negative there until the host has cores to use.
type LaneScalingStats struct {
	Servers int     `json:"servers"`
	Objects int     `json:"objects"`
	Seconds float64 `json:"seconds"`
	// ContendedWritesPerSecLane1/Lane4: writes/s with 2 readers per
	// object hammering the same servers.
	ContendedWritesPerSecLane1 float64 `json:"contended_writes_per_sec_lane1"`
	ContendedWritesPerSecLane4 float64 `json:"contended_writes_per_sec_lane4"`
	// ContendedSpeedup is lane4/lane1; the acceptance bar is >= 1.5.
	ContendedSpeedup float64 `json:"contended_speedup"`
	// WriteOnlyWritesPerSecLane1/Lane4: writers only, no read load.
	WriteOnlyWritesPerSecLane1 float64 `json:"write_only_writes_per_sec_lane1"`
	WriteOnlyWritesPerSecLane4 float64 `json:"write_only_writes_per_sec_lane4"`
	WriteOnlySpeedup           float64 `json:"write_only_speedup"`
}

// TrainScalingStats compares ring write throughput at TrainLength 8
// against the classic piggyback framing (TrainLength 1) on the same
// L=4 lane fanout: the PR-4 tentpole metric, measured with
// RingWriteThroughput's windowed drivers (writes kept outstanding per
// server, plus a read window in the contended rows) so the ring
// pipeline — not client goroutine scheduling — is the bottleneck and
// saturated lanes actually accumulate the queues trains drain. The
// avg_train_len fields report the achieved envelopes per frame
// (Server.RingFrameStats); 1.0 would mean framing amortized nothing.
// The lane_scaling section above deliberately stays at TrainLength 1
// so it remains comparable with the PR 2/3 snapshots.
type TrainScalingStats struct {
	Servers     int     `json:"servers"`
	Objects     int     `json:"objects"`
	Lanes       int     `json:"lanes"`
	WriteWindow int     `json:"write_window"`
	ReadWindow  int     `json:"read_window"`
	Seconds     float64 `json:"seconds"`
	// Contended rows: write drivers plus read drivers on the same
	// objects. The acceptance bar is ContendedSpeedup >= 1.5.
	ContendedWritesPerSecTrain1 float64 `json:"contended_writes_per_sec_train1"`
	ContendedWritesPerSecTrain8 float64 `json:"contended_writes_per_sec_train8"`
	ContendedAvgTrainLen1       float64 `json:"contended_avg_train_len1"`
	ContendedAvgTrainLen8       float64 `json:"contended_avg_train_len8"`
	ContendedSpeedup            float64 `json:"contended_speedup"`
	// WriteOnly rows: write drivers only, no read load.
	WriteOnlyWritesPerSecTrain1 float64 `json:"write_only_writes_per_sec_train1"`
	WriteOnlyWritesPerSecTrain8 float64 `json:"write_only_writes_per_sec_train8"`
	WriteOnlyAvgTrainLen1       float64 `json:"write_only_avg_train_len1"`
	WriteOnlyAvgTrainLen8       float64 `json:"write_only_avg_train_len8"`
	WriteOnlySpeedup            float64 `json:"write_only_speedup"`
}

// HotpathFrame builds the canonical hot-path frame: a 1 KiB pre-write
// with an elided write piggybacked, the steady-state shape of a
// saturated ring link. The wire benchmarks in bench_test.go and the
// JSON report measure this same frame.
func HotpathFrame() wire.Frame {
	pb := wire.Envelope{Kind: wire.KindWrite, Origin: 2, Tag: tag.Tag{TS: 9, ID: 2}, Flags: wire.FlagValueElided}
	return wire.Frame{
		Env:       wire.Envelope{Kind: wire.KindPreWrite, Origin: 1, Tag: tag.Tag{TS: 10, ID: 1}, Value: make([]byte, 1024)},
		Piggyback: &pb,
	}
}

// WireEncodeLoop is the body of BenchmarkWireEncode: the pooled encoder
// (AppendTo into a reused buffer), 0 allocs/op in steady state. Shared
// between `go test -bench` and the JSON report so both measure the same
// thing.
func WireEncodeLoop(b *testing.B) {
	f := HotpathFrame()
	b.ReportAllocs()
	b.SetBytes(int64(f.WireSize()))
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = f.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// WireRoundTripLoop is the body of BenchmarkWireEncodeDecodePooled: the
// full pooled round trip (AppendTo plus the aliasing DecodeFrom into a
// reused Frame), 0 allocs/op in steady state.
func WireRoundTripLoop(b *testing.B) {
	f := HotpathFrame()
	b.ReportAllocs()
	b.SetBytes(int64(f.WireSize()))
	var (
		buf []byte
		dec wire.Frame
	)
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = f.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.DecodeFrom(buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
}

// PendingSetOpsLoop is the body of BenchmarkPendingSet: steady-state
// add/prune cycles at the given depth, 0 allocs/op.
func PendingSetOpsLoop(depth int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		core.BenchPendingSetOps(depth, b.N)
	}
}

// ReadPathFastLoop is the body of BenchmarkReadPathLockFree: the
// snapshot-based serve decision, 0 allocs/op.
func ReadPathFastLoop(b *testing.B) {
	h := core.NewReadBenchHarness()
	b.ReportAllocs()
	if served := h.FastReads(b.N); served != b.N {
		b.Fatalf("fast path served %d/%d", served, b.N)
	}
}

// ReadPathLockedLoop is the body of BenchmarkReadPathLocked: the same
// decision through the shard lock.
func ReadPathLockedLoop(b *testing.B) {
	h := core.NewReadBenchHarness()
	b.ReportAllocs()
	if served := h.LockedReads(b.N); served != b.N {
		b.Fatalf("locked path served %d/%d", served, b.N)
	}
}

// MeasurePendingSet runs the pending-set microbenchmarks.
func MeasurePendingSet() PendingSetStats {
	d1 := testing.Benchmark(PendingSetOpsLoop(1))
	d8 := testing.Benchmark(PendingSetOpsLoop(8))
	d64 := testing.Benchmark(PendingSetOpsLoop(64))
	mx := testing.Benchmark(func(b *testing.B) {
		if core.BenchPendingSetMax(64, b.N) == 0 {
			b.Fatal("maxPending checksum zero")
		}
	})
	st := PendingSetStats{
		AddPruneNsPerOpDepth1:  float64(d1.NsPerOp()),
		AddPruneNsPerOpDepth8:  float64(d8.NsPerOp()),
		AddPruneNsPerOpDepth64: float64(d64.NsPerOp()),
		MaxPendingNsPerOp:      float64(mx.NsPerOp()),
	}
	for _, r := range []testing.BenchmarkResult{d1, d8, d64} {
		if a := r.AllocsPerOp(); a > st.AddPruneAllocsPerOp {
			st.AddPruneAllocsPerOp = a
		}
	}
	return st
}

// MeasureReadPath runs the lock-free vs locked read decision
// microbenchmarks.
func MeasureReadPath() ReadPathStats {
	fast := testing.Benchmark(ReadPathFastLoop)
	locked := testing.Benchmark(ReadPathLockedLoop)
	st := ReadPathStats{
		LockFreeNsPerOp:     float64(fast.NsPerOp()),
		LockFreeAllocsPerOp: fast.AllocsPerOp(),
		LockedNsPerOp:       float64(locked.NsPerOp()),
	}
	if st.LockFreeNsPerOp > 0 {
		st.Speedup = st.LockedNsPerOp / st.LockFreeNsPerOp
	}
	return st
}

// MeasureWireCodec runs the pooled codec microbenchmarks.
func MeasureWireCodec() WireCodecStats {
	enc := testing.Benchmark(WireEncodeLoop)
	rt := testing.Benchmark(WireRoundTripLoop)
	f := HotpathFrame()
	nsPerOp := float64(rt.NsPerOp())
	mbps := 0.0
	if nsPerOp > 0 {
		mbps = float64(f.WireSize()) / nsPerOp * 1e9 / 1e6
	}
	return WireCodecStats{
		EncodeNsPerOp:        float64(enc.NsPerOp()),
		EncodeAllocsPerOp:    enc.AllocsPerOp(),
		RoundTripNsPerOp:     nsPerOp,
		RoundTripAllocsPerOp: rt.AllocsPerOp(),
		MBPerSec:             mbps,
	}
}

// TCPEchoThroughput measures round-trip message throughput over a real
// loopback TCP connection: a client floods `msgs` frames at a server
// that echoes every frame back. Returns completed round trips per
// second.
func TCPEchoThroughput(opts tcpnet.Options, msgs, payloadBytes int) (float64, error) {
	srv, err := tcpnet.Listen(1, "127.0.0.1:0", tcpnet.AddressBook{}, opts)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	cl := tcpnet.NewClient(100, tcpnet.AddressBook{1: srv.Addr()}, opts)
	defer cl.Close()

	go func() {
		for {
			select {
			case in := <-srv.Inbox():
				if err := srv.Send(in.From, in.Frame); err != nil {
					return
				}
			case <-srv.Done():
				return
			}
		}
	}()

	f := wire.NewFrame(wire.Envelope{Kind: wire.KindWriteRequest, ReqID: 1, Value: make([]byte, payloadBytes)})
	recvDone := make(chan error, 1)
	go func() {
		deadline := time.After(2 * time.Minute)
		for i := 0; i < msgs; i++ {
			select {
			case <-cl.Inbox():
			case <-deadline:
				recvDone <- fmt.Errorf("bench: echo stalled after %d/%d messages", i, msgs)
				return
			}
		}
		recvDone <- nil
	}()
	// The sender runs in its own goroutine: if the echo path wedges, the
	// receiver's stall error must win, not a Send blocked on a full
	// pipeline — the deferred Closes then release the sender.
	sendErr := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < msgs; i++ {
			if err := cl.Send(1, f); err != nil {
				sendErr <- fmt.Errorf("bench: echo send %d: %w", i, err)
				return
			}
		}
		sendErr <- nil
	}()
	if err := <-recvDone; err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if err := <-sendErr; err != nil {
		return 0, err
	}
	return float64(msgs) / elapsed.Seconds(), nil
}

// MeasureTCPEcho compares the coalescing writer with the
// flush-per-frame baseline.
func MeasureTCPEcho(msgs, payloadBytes int) (TCPEchoStats, error) {
	coalesced, err := TCPEchoThroughput(tcpnet.Options{}, msgs, payloadBytes)
	if err != nil {
		return TCPEchoStats{}, err
	}
	unbatched, err := TCPEchoThroughput(tcpnet.Options{DisableCoalescing: true}, msgs, payloadBytes)
	if err != nil {
		return TCPEchoStats{}, err
	}
	st := TCPEchoStats{
		Messages:            msgs,
		PayloadBytes:        payloadBytes,
		CoalescedMsgsPerSec: coalesced,
		UnbatchedMsgsPerSec: unbatched,
	}
	if unbatched > 0 {
		st.Speedup = coalesced / unbatched
	}
	return st, nil
}

// MultiObjectThroughput drives independent closed-loop read/write load
// over `objects` registers on one async cluster and returns aggregate
// reads/s and writes/s. Each object gets one writer and two readers,
// spread over the servers round-robin.
func MultiObjectThroughput(ctx context.Context, servers, objects int, duration time.Duration, mod func(*core.Config)) (readsPerSec, writesPerSec float64, err error) {
	cluster, err := NewAsyncCluster(servers, mod)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()

	var (
		reads, writes atomic.Uint64
		wg            sync.WaitGroup
	)
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()
	value := make([]byte, 1024)
	for obj := 0; obj < objects; obj++ {
		pin := cluster.Members[obj%len(cluster.Members)]
		wcl, err := cluster.NewClient(pin)
		if err != nil {
			return 0, 0, err
		}
		defer wcl.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				if _, err := wcl.Write(runCtx, wire.ObjectID(obj), value); err == nil {
					writes.Add(1)
				}
			}
		}()
		for r := 0; r < 2; r++ {
			rcl, err := cluster.NewClient(pin)
			if err != nil {
				return 0, 0, err
			}
			defer rcl.Close()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					if _, _, err := rcl.Read(runCtx, wire.ObjectID(obj)); err == nil {
						reads.Add(1)
					}
				}
			}()
		}
	}
	start := time.Now()
	<-runCtx.Done()
	elapsed := time.Since(start).Seconds()
	cancel()
	wg.Wait()
	return float64(reads.Load()) / elapsed, float64(writes.Load()) / elapsed, nil
}

// MultiObjectWriteThroughput drives one closed-loop writer per object,
// plus readersPerObject closed-loop readers on the same object, over a
// cluster configured with the given lane fanout and train length, and
// returns aggregate completed writes/s. Writers pin to servers
// round-robin, so every server both initiates and forwards. With
// readers the workload is the contended shape of the lane- and
// train-scaling metrics; with zero readers it isolates the bare ring
// write path. trainLen 1 is the classic piggyback framing.
func MultiObjectWriteThroughput(ctx context.Context, servers, objects, lanes, trainLen, readersPerObject int, duration time.Duration) (float64, error) {
	cluster, err := NewAsyncCluster(servers, func(c *core.Config) {
		c.WriteLanes = lanes
		c.TrainLength = trainLen
	})
	if err != nil {
		return 0, err
	}
	defer cluster.Close()

	var (
		writes atomic.Uint64
		wg     sync.WaitGroup
	)
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()
	value := make([]byte, 1024)
	for obj := 0; obj < objects; obj++ {
		pin := cluster.Members[obj%len(cluster.Members)]
		cl, err := cluster.NewClient(pin)
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				if _, err := cl.Write(runCtx, wire.ObjectID(obj), value); err == nil {
					writes.Add(1)
				}
			}
		}()
		for r := 0; r < readersPerObject; r++ {
			rcl, err := cluster.NewClient(pin)
			if err != nil {
				return 0, err
			}
			defer rcl.Close()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					_, _, _ = rcl.Read(runCtx, wire.ObjectID(obj))
				}
			}()
		}
	}
	start := time.Now()
	<-runCtx.Done()
	elapsed := time.Since(start).Seconds()
	cancel()
	wg.Wait()
	return float64(writes.Load()) / elapsed, nil
}

// MeasureLaneScaling compares the lane-sharded write path (4 lanes)
// against the single-loop baseline on the same 8-object workloads,
// contended (2 readers per object) and write-only. Trains are pinned to
// 1 (classic framing) so the section stays comparable with the PR 2/3
// snapshots; MeasureTrainScaling owns the train dimension.
func MeasureLaneScaling(ctx context.Context, duration time.Duration) (LaneScalingStats, error) {
	const servers, objects = 3, 8
	st := LaneScalingStats{
		Servers: servers,
		Objects: objects,
		Seconds: duration.Seconds(),
	}
	var err error
	if st.ContendedWritesPerSecLane1, err = MultiObjectWriteThroughput(ctx, servers, objects, 1, 1, 2, duration); err != nil {
		return st, err
	}
	if st.ContendedWritesPerSecLane4, err = MultiObjectWriteThroughput(ctx, servers, objects, 4, 1, 2, duration); err != nil {
		return st, err
	}
	if st.WriteOnlyWritesPerSecLane1, err = MultiObjectWriteThroughput(ctx, servers, objects, 1, 1, 0, duration); err != nil {
		return st, err
	}
	if st.WriteOnlyWritesPerSecLane4, err = MultiObjectWriteThroughput(ctx, servers, objects, 4, 1, 0, duration); err != nil {
		return st, err
	}
	if st.ContendedWritesPerSecLane1 > 0 {
		st.ContendedSpeedup = st.ContendedWritesPerSecLane4 / st.ContendedWritesPerSecLane1
	}
	if st.WriteOnlyWritesPerSecLane1 > 0 {
		st.WriteOnlySpeedup = st.WriteOnlyWritesPerSecLane4 / st.WriteOnlyWritesPerSecLane1
	}
	return st, nil
}

// MeasureTrainScaling compares TrainLength 8 against the classic
// piggyback framing (TrainLength 1) at the default 4-lane fanout:
// 256 objects, 128 writes kept outstanding per server (deep enough
// queues for real trains to form), with a 32-read window per server in
// the contended rows.
func MeasureTrainScaling(duration time.Duration) (TrainScalingStats, error) {
	const servers, objects, lanes, writeWin, readWin = 3, 256, 4, 128, 32
	st := TrainScalingStats{
		Servers:     servers,
		Objects:     objects,
		Lanes:       lanes,
		WriteWindow: writeWin,
		ReadWindow:  readWin,
		Seconds:     duration.Seconds(),
	}
	run := func(trainLen, readWindow int) (RingLoadResult, error) {
		return RingWriteThroughput(servers, objects, lanes, trainLen, writeWin, readWindow, duration)
	}
	res, err := run(1, readWin)
	if err != nil {
		return st, err
	}
	st.ContendedWritesPerSecTrain1, st.ContendedAvgTrainLen1 = res.WritesPerSec, res.AvgTrainLen
	if res, err = run(8, readWin); err != nil {
		return st, err
	}
	st.ContendedWritesPerSecTrain8, st.ContendedAvgTrainLen8 = res.WritesPerSec, res.AvgTrainLen
	if res, err = run(1, 0); err != nil {
		return st, err
	}
	st.WriteOnlyWritesPerSecTrain1, st.WriteOnlyAvgTrainLen1 = res.WritesPerSec, res.AvgTrainLen
	if res, err = run(8, 0); err != nil {
		return st, err
	}
	st.WriteOnlyWritesPerSecTrain8, st.WriteOnlyAvgTrainLen8 = res.WritesPerSec, res.AvgTrainLen
	if st.ContendedWritesPerSecTrain1 > 0 {
		st.ContendedSpeedup = st.ContendedWritesPerSecTrain8 / st.ContendedWritesPerSecTrain1
	}
	if st.WriteOnlyWritesPerSecTrain1 > 0 {
		st.WriteOnlySpeedup = st.WriteOnlyWritesPerSecTrain8 / st.WriteOnlyWritesPerSecTrain1
	}
	return st, nil
}

// MeasureMultiObject compares the sharded read path with the inline
// baseline on the same multi-object workload.
func MeasureMultiObject(ctx context.Context, duration time.Duration) (MultiObjectStats, error) {
	const servers, objects = 3, 8
	shardedR, shardedW, err := MultiObjectThroughput(ctx, servers, objects, duration, nil)
	if err != nil {
		return MultiObjectStats{}, err
	}
	inlineR, _, err := MultiObjectThroughput(ctx, servers, objects, duration, func(c *core.Config) {
		c.ReadConcurrency = -1
		c.WriteLanes = -1
		// Keep the baseline the pre-sharding server it documents: locked
		// inline reads, no snapshot fast path.
		c.DisableReadSnapshots = true
	})
	if err != nil {
		return MultiObjectStats{}, err
	}
	st := MultiObjectStats{
		Servers:             servers,
		Objects:             objects,
		Seconds:             duration.Seconds(),
		ShardedReadsPerSec:  shardedR,
		ShardedWritesPerSec: shardedW,
		InlineReadsPerSec:   inlineR,
	}
	if inlineR > 0 {
		st.ReadSpeedup = shardedR / inlineR
	}
	return st, nil
}

// RunHotpath runs every hot-path benchmark and assembles the report.
func RunHotpath(ctx context.Context, echoMsgs int, multiObjDuration time.Duration) (HotpathReport, error) {
	rep := HotpathReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Wire:       MeasureWireCodec(),
		PendingSet: MeasurePendingSet(),
		ReadPath:   MeasureReadPath(),
	}
	eg, err := MeasureEgress()
	if err != nil {
		return rep, err
	}
	rep.Egress = eg
	// 256-byte payloads sit between the ring's tiny elided-write frames
	// and full 1 KiB values; at this size the echo is syscall-bound, so
	// it isolates what coalescing actually buys. (At 1 KiB loopback
	// memory bandwidth starts to dominate and the comparison gets noisy.)
	echo, err := MeasureTCPEcho(echoMsgs, 256)
	if err != nil {
		return rep, err
	}
	rep.TCPEcho = echo
	w, err := MeasureWAL(walSweepRecords, walSweepTrainLen, walSweepValue)
	if err != nil {
		return rep, err
	}
	rep.WAL = w
	// The fleet comparisons run before the closed-loop sections below:
	// those spawn thousands of client goroutines whose teardown debris
	// (stack growth, pacer state, lingering timers) skews anything
	// measured after them far more than the reverse direction.
	settleBetweenSections()
	ack, err := MeasureAckPath(ackPathFleetClients, ackPathOfferedRate, multiObjDuration)
	if err != nil {
		return rep, err
	}
	rep.AckPath = ack
	ol, err := MeasureOpenLoop(ackPathFleetClients, []float64{5000, 10000, 20000, 40000}, multiObjDuration)
	if err != nil {
		return rep, err
	}
	rep.OpenLoop = ol
	settleBetweenSections()
	fed, err := MeasureFederation(multiObjDuration)
	if err != nil {
		return rep, err
	}
	rep.Federation = fed
	settleBetweenSections()
	mo, err := MeasureMultiObject(ctx, multiObjDuration)
	if err != nil {
		return rep, err
	}
	rep.MultiObject = mo
	settleBetweenSections()
	lanes, err := MeasureLaneScaling(ctx, multiObjDuration)
	if err != nil {
		return rep, err
	}
	rep.LaneScaling = lanes
	settleBetweenSections()
	trains, err := MeasureTrainScaling(multiObjDuration)
	if err != nil {
		return rep, err
	}
	rep.TrainScaling = trains
	return rep, nil
}

// settleBetweenSections lets the previous section's teardown finish
// (drained goroutines exiting, timers firing) and resets the heap so the
// next section does not inherit its GC debt.
func settleBetweenSections() {
	time.Sleep(300 * time.Millisecond)
	runtime.GC()
}

// WriteJSON writes the report to path, indented for diff-friendliness.
func (r HotpathReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// RingLoadResult is one RingWriteThroughput measurement.
type RingLoadResult struct {
	// WritesPerSec is the aggregate completed (acknowledged) writes/s.
	WritesPerSec float64
	// AvgTrainLen is the achieved envelopes-per-ring-frame across the
	// cluster (Server.RingFrameStats): 1.0 means no amortization ever
	// happened, Config.TrainLength is the ceiling.
	AvgTrainLen float64
}

// RingWriteThroughput measures the ring write path's capacity with
// windowed request drivers instead of closed-loop clients: one driver
// endpoint per server keeps writeWindow write requests outstanding
// (spread round-robin over the object space) and counts acks, and —
// when readWindow > 0 — one read driver per server keeps readWindow
// read requests outstanding against the same objects, the contended
// shape. Drivers speak the raw transport, so the measurement is
// dominated by the servers' ring pipeline rather than by client
// goroutine scheduling; deep windows are what let a saturated lane
// accumulate the queue a frame train drains (DESIGN.md §9).
func RingWriteThroughput(servers, objects, lanes, trainLen, writeWindow, readWindow int, duration time.Duration) (RingLoadResult, error) {
	members := make([]wire.ProcessID, 0, servers)
	for i := 1; i <= servers; i++ {
		members = append(members, wire.ProcessID(i))
	}
	net := transport.NewMemNetwork(transport.MemNetworkOptions{})
	srvs := make([]*core.Server, 0, servers)
	eps := make([]*transport.MemEndpoint, 0, servers)
	defer func() {
		for i, s := range srvs {
			s.Stop()
			_ = eps[i].Close()
		}
	}()
	for _, id := range members {
		cfg := core.Config{ID: id, Members: members, WriteLanes: lanes, TrainLength: trainLen}
		ep, err := net.RegisterSession(cfg.SessionHello())
		if err != nil {
			return RingLoadResult{}, err
		}
		srv, err := core.NewServer(cfg, ep)
		if err != nil {
			_ = ep.Close()
			return RingLoadResult{}, err
		}
		srv.Start()
		srvs = append(srvs, srv)
		eps = append(eps, ep)
	}

	membershipHash := wire.MembershipHash(members)
	stop := make(chan struct{})
	// Buffered to driver count: a driver that dies early (failed send,
	// or the error path closing stop before collection) must be able to
	// report without a collector, or it would leak blocked forever.
	writeDone := make(chan uint64, servers)
	readDone := make(chan uint64, servers)
	value := make([]byte, 1024)

	// driver keeps `window` requests of the given kind outstanding
	// against one server and reports how many were acknowledged.
	driver := func(id, target wire.ProcessID, kind wire.Kind) error {
		dep, err := net.RegisterSession(wire.Hello{
			Version: wire.HelloVersion, From: id,
			Link: wire.LinkGeneral, MembershipHash: membershipHash,
		})
		if err != nil {
			return err
		}
		window, done := writeWindow, writeDone
		if kind == wire.KindReadRequest {
			window, done = readWindow, readDone
		}
		go func() {
			defer func() { _ = dep.Close() }()
			var acked uint64
			reqID := uint64(0)
			outstanding := 0
			for {
				select {
				case <-stop:
					done <- acked
					return
				default:
				}
				for outstanding < window {
					reqID++
					env := wire.Envelope{Kind: kind, Object: wire.ObjectID(int(reqID) % objects), ReqID: reqID}
					if kind == wire.KindWriteRequest {
						env.Value = value
					}
					if err := dep.Send(target, wire.NewFrame(env)); err != nil {
						done <- acked
						return
					}
					outstanding++
				}
				select {
				case <-dep.Inbox():
					acked++
					outstanding--
				case <-stop:
					done <- acked
					return
				}
			}
		}()
		return nil
	}

	for i, target := range members {
		if err := driver(wire.ProcessID(10000+i), target, wire.KindWriteRequest); err != nil {
			close(stop)
			return RingLoadResult{}, fmt.Errorf("bench: write driver: %w", err)
		}
		if readWindow > 0 {
			if err := driver(wire.ProcessID(20000+i), target, wire.KindReadRequest); err != nil {
				close(stop)
				return RingLoadResult{}, fmt.Errorf("bench: read driver: %w", err)
			}
		}
	}

	start := time.Now()
	time.Sleep(duration)
	close(stop)
	elapsed := time.Since(start).Seconds()
	var writes uint64
	for range members {
		writes += <-writeDone
		if readWindow > 0 {
			<-readDone // read acks are load, not the metric
		}
	}
	var frames, envs uint64
	for _, s := range srvs {
		f, e := s.RingFrameStats()
		frames += f
		envs += e
	}
	res := RingLoadResult{WritesPerSec: float64(writes) / elapsed}
	if frames > 0 {
		res.AvgTrainLen = float64(envs) / float64(frames)
	}
	return res, nil
}

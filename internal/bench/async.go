package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// AsyncCluster is a running in-process deployment of the real
// (goroutine/channel) implementation over the in-memory transport, used
// by the async validation experiments and the examples.
type AsyncCluster struct {
	Net     *transport.MemNetwork
	Members []wire.ProcessID

	servers    []*core.Server
	endpoints  []transport.Endpoint
	nextClient wire.ProcessID
}

// NewAsyncCluster starts n storage servers on a fresh in-memory network.
func NewAsyncCluster(n int, mod func(*core.Config)) (*AsyncCluster, error) {
	c := &AsyncCluster{
		Net:        transport.NewMemNetwork(transport.MemNetworkOptions{}),
		nextClient: 1000,
	}
	for i := 1; i <= n; i++ {
		c.Members = append(c.Members, wire.ProcessID(i))
	}
	for _, id := range c.Members {
		cfg := core.Config{ID: id, Members: c.Members}
		if mod != nil {
			mod(&cfg)
		}
		ep, err := c.Net.RegisterSession(cfg.SessionHello())
		if err != nil {
			return nil, err
		}
		srv, err := core.NewServer(cfg, ep)
		if err != nil {
			return nil, err
		}
		srv.Start()
		c.servers = append(c.servers, srv)
		c.endpoints = append(c.endpoints, ep)
	}
	return c, nil
}

// Close stops every server.
func (c *AsyncCluster) Close() {
	for i, srv := range c.servers {
		srv.Stop()
		_ = c.endpoints[i].Close()
	}
}

// NewClient attaches a storage client; pinned != 0 pins it to one server.
func (c *AsyncCluster) NewClient(pinned wire.ProcessID) (*client.Client, error) {
	c.nextClient++
	ep, err := c.Net.RegisterSession(wire.Hello{
		Version:        wire.HelloVersion,
		From:           c.nextClient,
		Link:           wire.LinkGeneral,
		MembershipHash: wire.MembershipHash(c.Members),
	})
	if err != nil {
		return nil, err
	}
	opts := client.Options{Servers: c.Members, AttemptTimeout: 10 * time.Second}
	if pinned != 0 {
		opts.Servers = []wire.ProcessID{pinned}
		opts.Policy = client.PolicyPinned
	}
	return client.New(ep, opts)
}

// AsyncReadScaling validates on the real implementation that total read
// throughput grows with the number of servers (the shape of Figure 3a;
// absolute numbers depend on the host, so the table reports ops/s and
// the scaling factor relative to n=2).
func AsyncReadScaling(ctx context.Context, counts []int, perServerClients int, duration time.Duration) (Experiment, error) {
	table := stats.Table{
		Title:   "Async validation — read throughput scaling (real goroutine implementation)",
		Columns: []string{"servers", "reads/s", "scale vs n=2", "p50 latency"},
	}
	var base float64
	for _, n := range counts {
		res, err := runAsyncWorkload(ctx, n, perServerClients, 0, duration)
		if err != nil {
			return Experiment{}, err
		}
		if base == 0 {
			base = res.ReadOpsPerSec
		}
		scale := 0.0
		if base > 0 {
			scale = res.ReadOpsPerSec / base
		}
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", res.ReadOpsPerSec),
			fmt.Sprintf("%.2fx", scale),
			res.ReadLatency.P50.String(),
		)
	}
	return Experiment{
		ID:    "async-read-scaling",
		Title: "Real implementation: read capacity is not eroded by cluster size",
		Table: table,
		Notes: "In-process, every server shares the host's cores, so total ops/s is CPU-bound " +
			"and cannot grow with n on one machine. The validated property is that reads involve " +
			"no inter-server coordination: per-cluster read throughput stays in one band as n grows, " +
			"where a quorum system's reads slow down with n. The linear-scaling shape itself is " +
			"reproduced in the round-model experiments (fig3a), where each server has its own links.",
	}, nil
}

// AsyncWriteThroughput validates that write throughput does not degrade
// as servers are added (the shape of Figure 3b).
func AsyncWriteThroughput(ctx context.Context, counts []int, perServerClients int, duration time.Duration) (Experiment, error) {
	table := stats.Table{
		Title:   "Async validation — write throughput vs servers (real implementation)",
		Columns: []string{"servers", "writes/s", "p50 latency"},
	}
	for _, n := range counts {
		res, err := runAsyncWorkload(ctx, n, 0, perServerClients, duration)
		if err != nil {
			return Experiment{}, err
		}
		table.AddRow(
			fmt.Sprint(n),
			fmt.Sprintf("%.0f", res.WriteOpsPerSec),
			res.WriteLatency.P50.String(),
		)
	}
	return Experiment{
		ID:    "async-write-throughput",
		Title: "Real implementation: write throughput stays in one band as n grows",
		Table: table,
		Notes: "Write latency grows with n (two ring traversals), so per-client rates fall; aggregate completions stay in one band as in Figure 3b.",
	}, nil
}

// runAsyncWorkload runs one measured workload on a fresh cluster.
func runAsyncWorkload(ctx context.Context, n, readersPer, writersPer int, duration time.Duration) (workload.Result, error) {
	cluster, err := NewAsyncCluster(n, nil)
	if err != nil {
		return workload.Result{}, err
	}
	defer cluster.Close()

	var readers, writers []workload.Storage
	var clients []*client.Client
	defer func() {
		for _, cl := range clients {
			_ = cl.Close()
		}
	}()
	for _, id := range cluster.Members {
		for i := 0; i < readersPer; i++ {
			cl, err := cluster.NewClient(id)
			if err != nil {
				return workload.Result{}, err
			}
			clients = append(clients, cl)
			readers = append(readers, cl)
		}
		for i := 0; i < writersPer; i++ {
			cl, err := cluster.NewClient(id)
			if err != nil {
				return workload.Result{}, err
			}
			clients = append(clients, cl)
			writers = append(writers, cl)
		}
	}
	res := workload.Run(ctx, workload.Config{
		Readers:     readers,
		Writers:     writers,
		Concurrency: 4,
		Duration:    duration,
		Warmup:      duration / 5,
	})
	return res, nil
}

package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// FederationLoadConfig describes one open-loop fleet run against a
// multi-ring federation on the in-memory transport: Rings independent
// ring clusters (each its own MemNetwork — shared-nothing, like the
// facade), with every fleet client holding one endpoint per ring and
// routing each operation by placement.RingOf. It is the federation
// analogue of OpenLoopConfig and inherits its open-loop semantics:
// operations are offered on a fixed absolute schedule and latency is
// measured from the scheduled send time, so coordinated omission
// cannot hide a ring that falls behind.
type FederationLoadConfig struct {
	// Rings is the ring count R; ServersPerRing sizes each ring, so the
	// scaling grid holds Rings*ServersPerRing constant while varying R.
	Rings          int
	ServersPerRing int
	// Objects is the register space routed over the rings. Larger is
	// smoother: jump-hash slices of 2048 objects put every ring within
	// ~2% of its fair share up to R=4.
	Objects int
	Clients int
	// OfferedPerSec is the aggregate arrival rate over the whole
	// federation, spread evenly over the fleet.
	OfferedPerSec float64
	ReadFraction  float64
	ValueBytes    int
	Duration      time.Duration
}

// FederationLoadResult is one federated fleet run's measurement.
type FederationLoadResult struct {
	Sent, Completed uint64
	Elapsed         time.Duration
	SentPerSec      float64
	// CompletedPerSec is the aggregate goodput over all rings — the
	// scaling headline.
	CompletedPerSec float64
	Latency         stats.Summary
	// PerRingCompleted splits the goodput by ring; ImbalancePct is the
	// worst ring's relative deviation from the mean,
	// max_r |done_r - mean| / mean, in percent. The acceptance bar for
	// the placement tier is <= 10%.
	PerRingCompleted []uint64
	ImbalancePct     float64
	// Pins records the first fleet client's per-ring targets (client i
	// pins ring r to member (i+r) mod ServersPerRing, so successive
	// clients rotate over every member) — placement provenance for the
	// grid CSV, the federation analogue of Client.PinnedServer.
	Pins []wire.ProcessID
}

func (cfg *FederationLoadConfig) normalize() error {
	if cfg.Rings <= 0 {
		cfg.Rings = 1
	}
	if cfg.ServersPerRing <= 0 {
		cfg.ServersPerRing = 3
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 2048
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 600
	}
	if cfg.ReadFraction <= 0 {
		cfg.ReadFraction = 0.9
	}
	if cfg.ReadFraction > 1 {
		cfg.ReadFraction = 1
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 128
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.OfferedPerSec <= 0 {
		return fmt.Errorf("bench: federation load needs OfferedPerSec > 0")
	}
	return nil
}

// writeEvery mirrors OpenLoopConfig.writeEvery.
func (cfg *FederationLoadConfig) writeEvery() int {
	if cfg.ReadFraction >= 1 {
		return 0
	}
	n := int(1/(1-cfg.ReadFraction) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// federationRing is one ring's world: its private network, servers,
// and membership.
type federationRing struct {
	net     *transport.MemNetwork
	members []wire.ProcessID
	srvs    []*core.Server
	seps    []*transport.MemEndpoint
}

// FederationLoad runs one federated fleet measurement: R shared-nothing
// ring clusters, per-ring seeding of exactly the objects placement
// routes there, and an open-loop fleet whose every client routes by
// placement.RingOf — the same single source of truth the facade's
// FederatedClient uses, so the measured routing is the shipped routing.
func FederationLoad(cfg FederationLoadConfig) (FederationLoadResult, error) {
	if err := cfg.normalize(); err != nil {
		return FederationLoadResult{}, err
	}

	rings := make([]*federationRing, 0, cfg.Rings)
	serversStopped := false
	stopServers := func() {
		if serversStopped {
			return
		}
		serversStopped = true
		for _, fr := range rings {
			for i, s := range fr.srvs {
				s.Stop()
				_ = fr.seps[i].Close()
			}
		}
	}
	defer stopServers()
	for r := 0; r < cfg.Rings; r++ {
		fr := &federationRing{net: transport.NewMemNetwork(transport.MemNetworkOptions{})}
		for i := 1; i <= cfg.ServersPerRing; i++ {
			fr.members = append(fr.members, wire.ProcessID(i))
		}
		for _, id := range fr.members {
			scfg := core.Config{ID: id, Members: fr.members}
			ep, err := fr.net.RegisterSession(scfg.SessionHello())
			if err != nil {
				return FederationLoadResult{}, err
			}
			srv, err := core.NewServer(scfg, ep)
			if err != nil {
				_ = ep.Close()
				return FederationLoadResult{}, err
			}
			srv.Start()
			fr.srvs = append(fr.srvs, srv)
			fr.seps = append(fr.seps, ep)
		}
		rings = append(rings, fr)
	}

	// Seed each ring with exactly its slice of the object space, so the
	// fleet's reads hit published snapshots from the first request and a
	// routing bug would surface as a read of a never-written register.
	for r, fr := range rings {
		if err := seedRingSlice(fr, r, cfg); err != nil {
			return FederationLoadResult{}, err
		}
	}

	// Fleet endpoints: one per client per ring. The networks are
	// disjoint, so the same fleet id registers in each.
	eps := make([][]*transport.MemEndpoint, cfg.Clients) // [client][ring]
	closeClients := func() {
		for _, ringEps := range eps {
			for _, ep := range ringEps {
				if ep != nil {
					_ = ep.Close()
				}
			}
		}
	}
	for i := 0; i < cfg.Clients; i++ {
		eps[i] = make([]*transport.MemEndpoint, cfg.Rings)
		for r, fr := range rings {
			ep, err := fr.net.Register(wire.ProcessID(openLoopClientBase + i))
			if err != nil {
				closeClients()
				return FederationLoadResult{}, err
			}
			eps[i][r] = ep
		}
	}
	defer closeClients()

	hist := &stats.Histogram{}
	var sent, completed atomic.Uint64
	perRing := make([]atomic.Uint64, cfg.Rings)
	start := time.Now().Add(100 * time.Millisecond)
	deadline := start.Add(cfg.Duration)
	writeEvery := cfg.writeEvery()
	value := make([]byte, cfg.ValueBytes)
	period := time.Duration(float64(cfg.Clients) / cfg.OfferedPerSec * float64(time.Second))
	if period <= 0 {
		period = time.Nanosecond
	}
	maxOps := int(cfg.Duration/period) + 2

	// Stagger each client's walk through the object space so the fleet
	// covers all of it even in short windows: client i starts at
	// i*stride and advances one object per op. With the PR-6 scheme
	// (start at i) a 600-client fleet sending ~30 ops each would touch
	// only the first ~650 ids of a 2048-object space, and the measured
	// per-ring imbalance would reflect that coverage skew rather than
	// the placement function.
	objStride := (cfg.Objects + cfg.Clients - 1) / cfg.Clients
	if objStride < 1 {
		objStride = 1
	}

	recvStop := make(chan struct{})
	var sendWG, recvWG sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		// Client i pins ring r to member (i+r) mod S: every server of
		// every ring carries an equal share of the fleet, and the r
		// offset keeps a client's per-ring pins from aligning on the
		// same index the way the facade's Federation.Client spread does.
		targets := make([]wire.ProcessID, cfg.Rings)
		for r, fr := range rings {
			targets[r] = fr.members[(i+r)%len(fr.members)]
		}
		// sched[k] is the scheduled send time of request k+1; each op is
		// routed to exactly one ring, and the transport's channel pair
		// orders the write before that ring's receiver reads it.
		sched := make([]int64, maxOps)

		for r := 0; r < cfg.Rings; r++ {
			recvWG.Add(1)
			go func(r int, ep *transport.MemEndpoint) {
				defer recvWG.Done()
				observe := func(in transport.Inbound) {
					if k := in.Frame.Env.ReqID; k >= 1 && k <= uint64(len(sched)) {
						hist.Observe(time.Since(time.Unix(0, sched[k-1])))
						completed.Add(1)
						perRing[r].Add(1)
					}
				}
				for {
					select {
					case in := <-ep.Inbox():
						observe(in)
					case <-recvStop:
						for {
							select {
							case in := <-ep.Inbox():
								observe(in)
							default:
								return
							}
						}
					}
				}
			}(r, eps[i][r])
		}

		sendWG.Add(1)
		go func(i int) {
			defer sendWG.Done()
			offset := time.Duration(float64(i) / cfg.OfferedPerSec * float64(time.Second))
			for k := 0; k < maxOps; k++ {
				t := start.Add(offset + time.Duration(k)*period)
				if t.After(deadline) {
					return
				}
				time.Sleep(time.Until(t))
				obj := wire.ObjectID((i*objStride + k) % cfg.Objects)
				ring := placement.RingOf(obj, cfg.Rings)
				env := wire.Envelope{
					Kind:   wire.KindReadRequest,
					Object: obj,
					ReqID:  uint64(k + 1),
				}
				if writeEvery > 0 && k%writeEvery == writeEvery-1 {
					env.Kind = wire.KindWriteRequest
					env.Value = value
				}
				sched[k] = t.UnixNano()
				if eps[i][ring].Send(targets[ring], wire.NewFrame(env)) != nil {
					return
				}
				sent.Add(1)
			}
		}(i)
	}

	sendWG.Wait()
	time.Sleep(200 * time.Millisecond)
	stopServers()
	close(recvStop)
	recvWG.Wait()
	elapsed := time.Since(start)

	res := FederationLoadResult{
		Sent:             sent.Load(),
		Completed:        completed.Load(),
		Elapsed:          elapsed,
		Latency:          hist.Snapshot(),
		PerRingCompleted: make([]uint64, cfg.Rings),
		Pins:             make([]wire.ProcessID, cfg.Rings),
	}
	for r := range perRing {
		res.PerRingCompleted[r] = perRing[r].Load()
		res.Pins[r] = rings[r].members[r%len(rings[r].members)]
	}
	res.ImbalancePct = ringImbalancePct(res.PerRingCompleted)
	if secs := elapsed.Seconds(); secs > 0 {
		res.SentPerSec = float64(res.Sent) / secs
		res.CompletedPerSec = float64(res.Completed) / secs
	}
	return res, nil
}

// seedRingSlice writes one initial value to every object placement
// assigns to ring r, round-robining the seed writes over the ring's
// members.
func seedRingSlice(fr *federationRing, r int, cfg FederationLoadConfig) error {
	seed, err := fr.net.Register(openLoopClientBase - 1)
	if err != nil {
		return err
	}
	defer func() { _ = seed.Close() }()
	value := make([]byte, cfg.ValueBytes)
	reqID := uint64(0)
	for obj := 0; obj < cfg.Objects; obj++ {
		if placement.RingOf(wire.ObjectID(obj), cfg.Rings) != r {
			continue
		}
		reqID++
		env := wire.Envelope{
			Kind:   wire.KindWriteRequest,
			Object: wire.ObjectID(obj),
			ReqID:  reqID,
			Value:  value,
		}
		if err := seed.Send(fr.members[obj%len(fr.members)], wire.NewFrame(env)); err != nil {
			return fmt.Errorf("bench: seed ring %d object %d: %w", r, obj, err)
		}
		select {
		case <-seed.Inbox():
		case <-time.After(10 * time.Second):
			return fmt.Errorf("bench: seed ring %d object %d never acknowledged", r, obj)
		}
	}
	return nil
}

// ringImbalancePct returns max_r |done_r - mean| / mean in percent
// (0 for a single ring or an idle federation).
func ringImbalancePct(perRing []uint64) float64 {
	if len(perRing) <= 1 {
		return 0
	}
	total := uint64(0)
	for _, d := range perRing {
		total += d
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(perRing))
	worst := 0.0
	for _, d := range perRing {
		dev := float64(d) - mean
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst / mean * 100
}

// routeSink keeps RouteLoop's routing decisions observable so the
// compiler cannot elide the loop under test.
var routeSink int

// RouteLoop is the body of BenchmarkFederationRoute: the client-side
// per-operation routing decision (placement.RingOf over a 4-ring
// federation, cycling the 2048-object bench space). This is on the
// fleet's per-op path, so -hotpath-strict requires 0 allocs/op.
func RouteLoop(b *testing.B) {
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += placement.RingOf(wire.ObjectID(i&2047), 4)
	}
	routeSink = sink
}

// FederationRow is one ring-count point of the federation scaling
// comparison: R rings of TotalServers/R servers each, same fleet, same
// offered rate.
type FederationRow struct {
	Rings           int     `json:"rings"`
	ServersPerRing  int     `json:"servers_per_ring"`
	SentPerSec      float64 `json:"sent_per_sec"`
	CompletedPerSec float64 `json:"completed_per_sec"`
	// ImbalancePct is the worst ring's deviation from the mean per-ring
	// goodput (acceptance bar: <= 10%).
	ImbalancePct float64 `json:"imbalance_pct"`
	P99Ms        float64 `json:"p99_ms"`
}

// FederationStats is the hot-path report's federation section: the
// aggregate-throughput scaling rows (R in {1,2,4} at a fixed total
// server count) plus the routing-decision microbenchmark. On a
// single-core host the rows show federation *overhead* (R control
// planes time-slicing one core), not scaling; the honest headline here
// is that imbalance stays within the bar and routing stays free. The
// scaling claim itself needs cores — see EXPERIMENTS.md.
type FederationStats struct {
	TotalServers  int     `json:"total_servers"`
	Objects       int     `json:"objects"`
	Clients       int     `json:"clients"`
	OfferedPerSec float64 `json:"offered_per_sec"`
	Seconds       float64 `json:"seconds"`

	Rows []FederationRow `json:"rows"`

	// RouteNsPerOp / RouteAllocsPerOp measure the per-operation routing
	// decision in isolation; allocs must be 0 (-hotpath-strict).
	RouteNsPerOp     float64 `json:"route_ns_per_op"`
	RouteAllocsPerOp int64   `json:"route_allocs_per_op"`
}

// Fleet sizing for the federation section: the same fleet scale as the
// ack-path sections, but a rate low enough that R=4's quadrupled
// control-plane overhead still fits a single core — the rows compare
// imbalance and delivery delay, not capacity.
const (
	federationTotalServers = 8
	federationObjects      = 2048
	federationFleetClients = 600
	federationOfferedRate  = 20000
)

// MeasureFederation runs the federation scaling rows and the routing
// microbenchmark for the hot-path report.
func MeasureFederation(duration time.Duration) (FederationStats, error) {
	st := FederationStats{
		TotalServers:  federationTotalServers,
		Objects:       federationObjects,
		Clients:       federationFleetClients,
		OfferedPerSec: federationOfferedRate,
		Seconds:       duration.Seconds(),
	}
	for _, r := range []int{1, 2, 4} {
		res, err := FederationLoad(FederationLoadConfig{
			Rings:          r,
			ServersPerRing: federationTotalServers / r,
			Objects:        federationObjects,
			Clients:        federationFleetClients,
			OfferedPerSec:  federationOfferedRate,
			Duration:       duration,
		})
		if err != nil {
			return st, fmt.Errorf("bench: federation R=%d: %w", r, err)
		}
		st.Rows = append(st.Rows, FederationRow{
			Rings:           r,
			ServersPerRing:  federationTotalServers / r,
			SentPerSec:      res.SentPerSec,
			CompletedPerSec: res.CompletedPerSec,
			ImbalancePct:    res.ImbalancePct,
			P99Ms:           float64(res.Latency.P99) / float64(time.Millisecond),
		})
		settleBetweenSections()
	}
	route := testing.Benchmark(RouteLoop)
	st.RouteNsPerOp = float64(route.NsPerOp())
	st.RouteAllocsPerOp = route.AllocsPerOp()
	return st, nil
}

package bench

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ackq"
	"repro/internal/wire"
)

// AckPathStats is the BENCH_hotpath.json "ack_path" section: the PR-6
// tentpole metric. The enqueue rows are microbenchmarks of the sharded
// sender itself (both must stay allocation-free; -hotpath-strict
// enforces it). The fleet rows compare the sharded per-client ack path
// against the pre-sharding single ackLoop (DisableAckSharding) with the
// same >= 1k-client fleet, where every client is its own destination
// and the shared sender serializes every ack behind one goroutine —
// twice: saturated (windowed, window 1: the throughput comparison) and
// at a fixed sustainable open-loop arrival rate (the tail-latency
// comparison, latencies measured from the scheduled send time).
type AckPathStats struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	Servers    int     `json:"servers"`
	Objects    int     `json:"objects"`
	Clients    int     `json:"clients"`
	Seconds    float64 `json:"seconds"`

	// EnqueueFast* measures Enqueue resolving through the non-blocking
	// transport fast path on an idle lane; EnqueueQueued* measures the
	// steady-state queued path (append + drain hand-off with recycled
	// buffers). Both must be 0 allocs/op.
	EnqueueFastNsPerOp       float64 `json:"enqueue_fast_ns_per_op"`
	EnqueueFastAllocsPerOp   int64   `json:"enqueue_fast_allocs_per_op"`
	EnqueueQueuedNsPerOp     float64 `json:"enqueue_queued_ns_per_op"`
	EnqueueQueuedAllocsPerOp int64   `json:"enqueue_queued_allocs_per_op"`

	// Windowed rows: every client keeps one operation outstanding, so
	// the cluster runs at capacity and the ack path is on the critical
	// path of every operation.
	WindowedShardedPerSec float64 `json:"windowed_sharded_per_sec"`
	WindowedShardedP50Us  float64 `json:"windowed_sharded_p50_us"`
	WindowedShardedP99Us  float64 `json:"windowed_sharded_p99_us"`
	WindowedLegacyPerSec  float64 `json:"windowed_legacy_per_sec"`
	WindowedLegacyP50Us   float64 `json:"windowed_legacy_p50_us"`
	WindowedLegacyP99Us   float64 `json:"windowed_legacy_p99_us"`
	// ShardedFastShare is the fraction of sharded-run acks that
	// bypassed the queue entirely via the transport fast path.
	ShardedFastShare float64 `json:"sharded_fast_share"`
	// ThroughputSpeedup is windowed sharded/legacy goodput; the
	// tentpole acceptance bar is ThroughputSpeedup >= 1 or
	// OpenLoopP99Ratio >= 1.
	ThroughputSpeedup float64 `json:"throughput_speedup"`

	// Open-loop rows: a fixed arrival rate both configurations can
	// sustain, so the comparison isolates ack delivery delay instead of
	// capacity.
	OpenLoopOfferedPerSec float64 `json:"open_loop_offered_per_sec"`
	OpenLoopShardedP95Us  float64 `json:"open_loop_sharded_p95_us"`
	OpenLoopShardedP99Us  float64 `json:"open_loop_sharded_p99_us"`
	OpenLoopLegacyP95Us   float64 `json:"open_loop_legacy_p95_us"`
	OpenLoopLegacyP99Us   float64 `json:"open_loop_legacy_p99_us"`
	// OpenLoopP99Ratio is legacy/sharded open-loop p99 (>1 means the
	// sharded path has the better tail).
	OpenLoopP99Ratio float64 `json:"open_loop_p99_ratio"`
}

// OpenLoopStats is the BENCH_hotpath.json "open_loop" section: a rate
// sweep of the open-loop fleet against the sharded server, plus one
// windowed (closed-loop) row for contrast. Open-loop latency is
// measured from the scheduled send time, so rows past the saturation
// point show the queueing delay closed-loop harnesses hide.
type OpenLoopStats struct {
	GoMaxProcs      int           `json:"gomaxprocs"`
	Servers         int           `json:"servers"`
	Objects         int           `json:"objects"`
	Clients         int           `json:"clients"`
	ReadFraction    float64       `json:"read_fraction"`
	SecondsPerPoint float64       `json:"seconds_per_point"`
	Rows            []OpenLoopRow `json:"rows"`
}

// OpenLoopRow is one point of the sweep.
type OpenLoopRow struct {
	// Mode is "open" (absolute arrival schedule) or "windowed" (fixed
	// outstanding ops; Offered then reports the window size).
	Mode            string  `json:"mode"`
	OfferedPerSec   float64 `json:"offered_per_sec"`
	SentPerSec      float64 `json:"sent_per_sec"`
	CompletedPerSec float64 `json:"completed_per_sec"`
	P50Us           float64 `json:"p50_us"`
	P95Us           float64 `json:"p95_us"`
	P99Us           float64 `json:"p99_us"`
	MaxUs           float64 `json:"max_us"`
}

// AckEnqueueFastLoop is the body of BenchmarkAckEnqueueFast: Enqueue on
// an idle lane with an always-willing transport fast path — the
// send-inline-on-the-protocol-goroutine case. 0 allocs/op.
func AckEnqueueFastLoop(b *testing.B) {
	var delivered atomic.Uint64
	s := ackq.NewSharded(
		func(uint32, wire.Frame) error { return nil },
		func(uint32, wire.Frame) bool { delivered.Add(1); return true },
		nil,
	)
	f := wire.NewFrame(wire.Envelope{Kind: wire.KindReadAck, ReqID: 1})
	s.Enqueue(7, f) // create the lane outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(7, f)
	}
	b.StopTimer()
	s.Stop()
}

// AckEnqueueQueuedLoop is the body of BenchmarkAckEnqueueQueued: the
// queued path in steady state — append under the lane lock, drain
// goroutine hand-off, recycled double buffers. The timed region
// includes waiting for the drain to deliver everything, so ns/op is
// end-to-end per ack, and the recycling keeps it at 0 allocs/op.
func AckEnqueueQueuedLoop(b *testing.B) {
	var delivered atomic.Uint64
	s := ackq.NewSharded(
		func(uint32, wire.Frame) error { delivered.Add(1); return nil },
		nil, // no fast path: everything queues
		nil,
	)
	f := wire.NewFrame(wire.Envelope{Kind: wire.KindReadAck, ReqID: 1})
	const warm = 1024
	for i := 0; i < warm; i++ {
		s.Enqueue(7, f)
	}
	for delivered.Load() < warm {
		time.Sleep(50 * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(7, f)
	}
	for delivered.Load() < uint64(b.N)+warm {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	s.Stop()
}

// usOf converts a duration to float microseconds for the JSON report.
func usOf(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// warmFleet runs one small throwaway fleet so the first measured run
// does not pay the process's scheduler/allocator warmup (the first
// fleet in a fresh process reliably shows an inflated tail).
func warmFleet() {
	_, _ = OpenLoopLoad(OpenLoopConfig{
		Clients:       200,
		OfferedPerSec: 5000,
		Duration:      300 * time.Millisecond,
	})
}

// MeasureAckPath runs the tentpole comparison: enqueue microbenchmarks,
// then the same client fleet against the sharded ack path and the
// single-ackLoop ablation — saturated (windowed) for throughput, and at
// a fixed sustainable open-loop rate for tail latency.
func MeasureAckPath(clients int, offeredPerSec float64, duration time.Duration) (AckPathStats, error) {
	const servers, objects = 3, 8
	st := AckPathStats{
		GoMaxProcs:            runtime.GOMAXPROCS(0),
		Servers:               servers,
		Objects:               objects,
		Clients:               clients,
		OpenLoopOfferedPerSec: offeredPerSec,
		Seconds:               duration.Seconds(),
	}
	fast := testing.Benchmark(AckEnqueueFastLoop)
	queued := testing.Benchmark(AckEnqueueQueuedLoop)
	st.EnqueueFastNsPerOp = float64(fast.NsPerOp())
	st.EnqueueFastAllocsPerOp = fast.AllocsPerOp()
	st.EnqueueQueuedNsPerOp = float64(queued.NsPerOp())
	st.EnqueueQueuedAllocsPerOp = queued.AllocsPerOp()

	// The 1-vCPU reference container is noisy enough that single fleet
	// runs are not trustworthy: interleave the configurations over
	// several rounds (so process-age drift hits both equally) and keep
	// each configuration's best round — best throughput for the
	// windowed rows, best p99 for the open-loop rows.
	const rounds = 3
	warmFleet()
	windowed := OpenLoopConfig{
		Servers:  servers,
		Objects:  objects,
		Clients:  clients,
		Window:   1,
		Duration: duration,
	}
	open := OpenLoopConfig{
		Servers:       servers,
		Objects:       objects,
		Clients:       clients,
		OfferedPerSec: offeredPerSec,
		Duration:      duration,
	}
	var wSharded, wLegacy, oSharded, oLegacy OpenLoopResult
	for r := 0; r < rounds; r++ {
		for _, legacy := range []bool{false, true} {
			wcfg := windowed
			wcfg.DisableAckSharding = legacy
			wres, err := OpenLoopLoad(wcfg)
			if err != nil {
				return st, err
			}
			ocfg := open
			ocfg.DisableAckSharding = legacy
			ores, err := OpenLoopLoad(ocfg)
			if err != nil {
				return st, err
			}
			if legacy {
				wLegacy = bestThroughput(wLegacy, wres)
				oLegacy = bestTail(oLegacy, ores)
			} else {
				wSharded = bestThroughput(wSharded, wres)
				oSharded = bestTail(oSharded, ores)
			}
		}
	}
	st.WindowedShardedPerSec = wSharded.CompletedPerSec
	st.WindowedShardedP50Us = usOf(wSharded.Latency.P50)
	st.WindowedShardedP99Us = usOf(wSharded.Latency.P99)
	st.WindowedLegacyPerSec = wLegacy.CompletedPerSec
	st.WindowedLegacyP50Us = usOf(wLegacy.Latency.P50)
	st.WindowedLegacyP99Us = usOf(wLegacy.Latency.P99)
	if total := wSharded.AckFast + wSharded.AckQueued; total > 0 {
		st.ShardedFastShare = float64(wSharded.AckFast) / float64(total)
	}
	if st.WindowedLegacyPerSec > 0 {
		st.ThroughputSpeedup = st.WindowedShardedPerSec / st.WindowedLegacyPerSec
	}
	st.OpenLoopShardedP95Us = usOf(oSharded.Latency.P95)
	st.OpenLoopShardedP99Us = usOf(oSharded.Latency.P99)
	st.OpenLoopLegacyP95Us = usOf(oLegacy.Latency.P95)
	st.OpenLoopLegacyP99Us = usOf(oLegacy.Latency.P99)
	if st.OpenLoopShardedP99Us > 0 {
		st.OpenLoopP99Ratio = st.OpenLoopLegacyP99Us / st.OpenLoopShardedP99Us
	}
	return st, nil
}

// bestThroughput keeps the run with the higher goodput.
func bestThroughput(a, b OpenLoopResult) OpenLoopResult {
	if a.Completed == 0 || b.CompletedPerSec > a.CompletedPerSec {
		return b
	}
	return a
}

// bestTail keeps the run with the lower p99.
func bestTail(a, b OpenLoopResult) OpenLoopResult {
	if a.Completed == 0 || b.Latency.P99 < a.Latency.P99 {
		return b
	}
	return a
}

// MeasureOpenLoop sweeps the open-loop fleet over offered rates against
// the sharded server, then adds one windowed row (window 1: the classic
// closed loop) for contrast.
func MeasureOpenLoop(clients int, rates []float64, duration time.Duration) (OpenLoopStats, error) {
	const servers, objects = 3, 8
	st := OpenLoopStats{
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Servers:         servers,
		Objects:         objects,
		Clients:         clients,
		ReadFraction:    0.9,
		SecondsPerPoint: duration.Seconds(),
	}
	warmFleet()
	for _, rate := range rates {
		res, err := OpenLoopLoad(OpenLoopConfig{
			Servers:       servers,
			Objects:       objects,
			Clients:       clients,
			OfferedPerSec: rate,
			Duration:      duration,
		})
		if err != nil {
			return st, err
		}
		st.Rows = append(st.Rows, openLoopRow("open", rate, res))
	}
	res, err := OpenLoopLoad(OpenLoopConfig{
		Servers:  servers,
		Objects:  objects,
		Clients:  clients,
		Window:   1,
		Duration: duration,
	})
	if err != nil {
		return st, err
	}
	st.Rows = append(st.Rows, openLoopRow("windowed", 1, res))
	return st, nil
}

// openLoopRow converts one fleet result into a report row.
func openLoopRow(mode string, offered float64, res OpenLoopResult) OpenLoopRow {
	return OpenLoopRow{
		Mode:            mode,
		OfferedPerSec:   offered,
		SentPerSec:      res.SentPerSec,
		CompletedPerSec: res.CompletedPerSec,
		P50Us:           usOf(res.Latency.P50),
		P95Us:           usOf(res.Latency.P95),
		P99Us:           usOf(res.Latency.P99),
		MaxUs:           usOf(res.Latency.Max),
	}
}

package simstore

import (
	"math"
	"testing"

	"repro/internal/netsim"
)

// ringDeployment builds a ring cluster with closed-loop clients.
func ringDeployment(cfg RingConfig, n, readersPerServer, writersPerServer, pipeline, warmup int) (*netsim.Simulator, *Metrics) {
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: warmup}
	ring := make([]int, n)
	for i := range ring {
		ring[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range ring {
		procs = append(procs, &RingServer{IDNum: id, Ring: ring, Cal: cal, Cfg: cfg})
	}
	nextClient := 1000
	for _, id := range ring {
		for r := 0; r < readersPerServer; r++ {
			nextClient++
			procs = append(procs, &Client{IDNum: nextClient, Server: id, Reads: true, Pipeline: pipeline, Cal: cal, M: m})
		}
		for w := 0; w < writersPerServer; w++ {
			nextClient++
			procs = append(procs, &Client{IDNum: nextClient, Server: id, Reads: false, Pipeline: pipeline, Cal: cal, M: m})
		}
	}
	return netsim.MustNew(netsim.Config{SharedNetwork: cfg.SharedNetwork}, procs...), m
}

func runRing(t *testing.T, cfg RingConfig, n, readers, writers, pipeline, rounds, warmup int) (*Metrics, netsim.Stats) {
	t.Helper()
	sim, m := ringDeployment(cfg, n, readers, writers, pipeline, warmup)
	sim.Run(rounds)
	m.Finish(rounds)
	return m, sim.Stats()
}

func TestRingReadLatencyIsTwoRounds(t *testing.T) {
	// Section 4.1: an isolated read takes exactly 2 rounds.
	m, _ := runRing(t, RingConfig{}, 5, 1, 0, 1, 200, 0)
	if got := m.MeanReadLatency(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("read latency = %v rounds, want 2", got)
	}
}

func TestRingWriteLatencyIs2NPlus2(t *testing.T) {
	// Section 4.1: an isolated write takes exactly 2N+2 rounds.
	for _, n := range []int{2, 3, 5, 8} {
		cal := netsim.DefaultCalibration()
		m := &Metrics{}
		ring := make([]int, n)
		var procs []netsim.Process
		for i := range ring {
			ring[i] = i + 1
		}
		for _, id := range ring {
			procs = append(procs, &RingServer{IDNum: id, Ring: ring, Cal: cal})
		}
		procs = append(procs, &Client{IDNum: 1000, Server: 1, Reads: false, Pipeline: 1, Cal: cal, M: m})
		sim := netsim.MustNew(netsim.Config{}, procs...)
		rounds := 10 * (2*n + 2)
		sim.Run(rounds)
		m.Finish(rounds)
		want := float64(2*n + 2)
		if got := m.MeanWriteLatency(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: write latency = %v rounds, want %v", n, got, want)
		}
	}
}

func TestRingReadThroughputScalesLinearly(t *testing.T) {
	// Section 4.2: read-only throughput is n ops/round.
	for _, n := range []int{2, 4, 8} {
		m, _ := runRing(t, RingConfig{}, n, 2, 0, 2, 600, 100)
		want := float64(n)
		if got := m.ReadRate(); math.Abs(got-want) > 0.05*want {
			t.Fatalf("n=%d: read rate = %v ops/round, want ~%v", n, got, want)
		}
	}
}

func TestRingWriteThroughputIsOnePerRound(t *testing.T) {
	// Section 4.2: saturated write throughput is 1 op/round, independent
	// of the number of servers.
	for _, n := range []int{2, 4, 8} {
		m, _ := runRing(t, RingConfig{}, n, 0, 2, 2, 1200, 300)
		if got := m.WriteRate(); math.Abs(got-1) > 0.1 {
			t.Fatalf("n=%d: write rate = %v ops/round, want ~1", n, got)
		}
	}
}

func TestRingPiggybackAblationHalvesWrites(t *testing.T) {
	with, _ := runRing(t, RingConfig{}, 4, 0, 2, 2, 1200, 300)
	without, _ := runRing(t, RingConfig{DisablePiggyback: true}, 4, 0, 2, 2, 1200, 300)
	ratio := without.WriteRate() / with.WriteRate()
	if math.Abs(ratio-0.5) > 0.1 {
		t.Fatalf("no-piggyback/piggyback write rate ratio = %v, want ~0.5 (with=%v without=%v)",
			ratio, with.WriteRate(), without.WriteRate())
	}
}

func TestRingMixedLoadKeepsBothRates(t *testing.T) {
	// Figure 3c: a dedicated reader and writer per server; writes stay
	// ~1 op/round and reads stay near n ops/round. Because contended
	// reads wait out the pre-write barrier (~2N rounds), sustaining one
	// read per round per server requires a pipeline deeper than that
	// latency (Little's law) — the paper's client machines do the same
	// by "emulating multiple clients".
	const n = 6
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: 500}
	ring := make([]int, n)
	for i := range ring {
		ring[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range ring {
		procs = append(procs, &RingServer{IDNum: id, Ring: ring, Cal: cal})
		procs = append(procs, &Client{IDNum: 1000 + id, Server: id, Reads: true, Pipeline: 6 * n, Cal: cal, M: m})
		procs = append(procs, &Client{IDNum: 2000 + id, Server: id, Reads: false, Pipeline: 2 * n, Cal: cal, M: m})
	}
	sim := netsim.MustNew(netsim.Config{}, procs...)
	const rounds = 3000
	sim.Run(rounds)
	m.Finish(rounds)
	if got := m.WriteRate(); math.Abs(got-1) > 0.15 {
		t.Fatalf("contended write rate = %v, want ~1", got)
	}
	if got := m.ReadRate(); got < 0.7*float64(n) {
		t.Fatalf("contended read rate = %v, want >= %v", got, 0.7*float64(n))
	}
}

func TestRingAtomicityInvariantInModel(t *testing.T) {
	// The simulated servers must never regress their tag, and reads
	// always return the stored value of some write: spot-check by
	// running a contended mix and asserting the metrics counted every
	// completion exactly once (no lost or duplicated acks).
	m, _ := runRing(t, RingConfig{}, 3, 1, 1, 2, 800, 0)
	if m.Reads == 0 || m.Writes == 0 {
		t.Fatalf("mixed run produced reads=%d writes=%d", m.Reads, m.Writes)
	}
}

func TestFig1AlgorithmAThroughputAndLatency(t *testing.T) {
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: 100}
	ring := []int{1, 2, 3}
	var procs []netsim.Process
	for _, id := range ring {
		procs = append(procs, &AlgoAServer{IDNum: id, Ring: ring, Cal: cal})
	}
	for i, id := range ring {
		procs = append(procs, &Client{IDNum: 1000 + i, Server: id, Reads: true, Pipeline: 4, Cal: cal, M: m})
	}
	sim := netsim.MustNew(netsim.Config{SharedNetwork: true}, procs...)
	const rounds = 600
	sim.Run(rounds)
	m.Finish(rounds)
	if got := m.ReadRate(); math.Abs(got-1) > 0.1 {
		t.Fatalf("algorithm A read rate = %v ops/round, want ~1", got)
	}

	// Isolated latency: 4 rounds (client->s, s->s', s'->s, s->client).
	mLat := &Metrics{}
	procs = nil
	for _, id := range ring {
		procs = append(procs, &AlgoAServer{IDNum: id, Ring: ring, Cal: cal})
	}
	procs = append(procs, &Client{IDNum: 1000, Server: 1, Reads: true, Pipeline: 1, Cal: cal, M: mLat})
	sim = netsim.MustNew(netsim.Config{SharedNetwork: true}, procs...)
	sim.Run(200)
	mLat.Finish(200)
	if got := mLat.MeanReadLatency(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("algorithm A latency = %v rounds, want 4", got)
	}
}

func TestFig1AlgorithmBScalesPerServer(t *testing.T) {
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: 100}
	var procs []netsim.Process
	for id := 1; id <= 3; id++ {
		procs = append(procs, &AlgoBServer{IDNum: id, Cal: cal})
		procs = append(procs, &Client{IDNum: 1000 + id, Server: id, Reads: true, Pipeline: 4, Cal: cal, M: m})
	}
	sim := netsim.MustNew(netsim.Config{SharedNetwork: true}, procs...)
	const rounds = 600
	sim.Run(rounds)
	m.Finish(rounds)
	// Figure 1: 3 reads per round with 3 servers — 3x algorithm A.
	if got := m.ReadRate(); math.Abs(got-3) > 0.15 {
		t.Fatalf("algorithm B read rate = %v ops/round, want ~3", got)
	}
}

func quorumDeployment(n, readersPerServer, writersPerServer, pipeline, warmup int) (*netsim.Simulator, *Metrics) {
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: warmup}
	servers := make([]int, n)
	for i := range servers {
		servers[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range servers {
		procs = append(procs, &QuorumServer{IDNum: id, Servers: servers, Cal: cal})
	}
	next := 1000
	for _, id := range servers {
		for r := 0; r < readersPerServer; r++ {
			next++
			procs = append(procs, &Client{IDNum: next, Server: id, Reads: true, Pipeline: pipeline, Cal: cal, M: m})
		}
		for w := 0; w < writersPerServer; w++ {
			next++
			procs = append(procs, &Client{IDNum: next, Server: id, Reads: false, Pipeline: pipeline, Cal: cal, M: m})
		}
	}
	return netsim.MustNew(netsim.Config{}, procs...), m
}

func TestQuorumReadsDoNotScale(t *testing.T) {
	// The paper's core claim about quorum systems: total throughput
	// stays flat (or worse) as servers are added.
	rates := make(map[int]float64)
	for _, n := range []int{3, 5, 7} {
		sim, m := quorumDeployment(n, 2, 0, 2, 200)
		sim.Run(1000)
		m.Finish(1000)
		rates[n] = m.ReadRate()
	}
	if rates[7] > 1.5*rates[3] {
		t.Fatalf("quorum read rate scaled: %v", rates)
	}
	// And it is far below the ring's n ops/round.
	mRing, _ := runRing(t, RingConfig{}, 7, 2, 0, 2, 1000, 200)
	if rates[7] > mRing.ReadRate()/2 {
		t.Fatalf("quorum rate %v not clearly below ring rate %v", rates[7], mRing.ReadRate())
	}
}

func TestQuorumFunctionalReadYourWrite(t *testing.T) {
	// One writer then readers: the written value must be returned.
	cal := netsim.DefaultCalibration()
	m := &Metrics{}
	servers := []int{1, 2, 3}
	var procs []netsim.Process
	for _, id := range servers {
		procs = append(procs, &QuorumServer{IDNum: id, Servers: servers, Cal: cal})
	}
	procs = append(procs, &Client{IDNum: 1001, Server: 1, Reads: false, Pipeline: 1, Cal: cal, M: m})
	sim := netsim.MustNew(netsim.Config{}, procs...)
	sim.Run(100)
	m.Finish(100)
	if m.Writes == 0 {
		t.Fatal("quorum writes never complete")
	}
}

func chainDeployment(n, readers, writers, pipeline, warmup int) (*netsim.Simulator, *Metrics) {
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: warmup}
	chain := make([]int, n)
	for i := range chain {
		chain[i] = i + 1
	}
	head, tail := chain[0], chain[n-1]
	var procs []netsim.Process
	for _, id := range chain {
		procs = append(procs, &ChainServer{IDNum: id, Chain: chain, Cal: cal})
	}
	next := 1000
	for r := 0; r < readers; r++ {
		next++
		procs = append(procs, &Client{IDNum: next, Server: tail, Reads: true, Pipeline: pipeline, Cal: cal, M: m})
	}
	for w := 0; w < writers; w++ {
		next++
		procs = append(procs, &Client{IDNum: next, Server: head, Reads: false, Pipeline: pipeline, Cal: cal, M: m})
	}
	return netsim.MustNew(netsim.Config{}, procs...), m
}

func TestChainReadsPinnedToTail(t *testing.T) {
	// Chain replication reads all hit the tail: ~1 op/round regardless
	// of chain length (the paper's [28] contrast).
	for _, n := range []int{3, 7} {
		sim, m := chainDeployment(n, 4, 0, 2, 200)
		sim.Run(800)
		m.Finish(800)
		if got := m.ReadRate(); math.Abs(got-1) > 0.1 {
			t.Fatalf("n=%d: chain read rate = %v, want ~1", n, got)
		}
	}
}

func TestChainWritesPipeline(t *testing.T) {
	sim, m := chainDeployment(5, 0, 3, 2, 200)
	sim.Run(800)
	m.Finish(800)
	if got := m.WriteRate(); math.Abs(got-1) > 0.1 {
		t.Fatalf("chain write rate = %v, want ~1", got)
	}
}

func TestTOBOpsShareOnePipeline(t *testing.T) {
	// Reads and writes both circulate the ring: combined throughput ~1
	// op/round however many servers there are.
	cal := netsim.DefaultCalibration()
	for _, n := range []int{3, 6} {
		m := &Metrics{WarmupRounds: 200}
		ring := make([]int, n)
		for i := range ring {
			ring[i] = i + 1
		}
		var procs []netsim.Process
		for _, id := range ring {
			procs = append(procs, &TOBServer{IDNum: id, Ring: ring, Cal: cal})
		}
		next := 1000
		for _, id := range ring {
			next++
			procs = append(procs, &Client{IDNum: next, Server: id, Reads: true, Pipeline: 2, Cal: cal, M: m})
			next++
			procs = append(procs, &Client{IDNum: next, Server: id, Reads: false, Pipeline: 2, Cal: cal, M: m})
		}
		sim := netsim.MustNew(netsim.Config{}, procs...)
		sim.Run(1000)
		m.Finish(1000)
		total := m.ReadRate() + m.WriteRate()
		if math.Abs(total-1) > 0.15 {
			t.Fatalf("n=%d: tob combined rate = %v, want ~1", n, total)
		}
	}
}

func TestSharedNetworkRingStillLive(t *testing.T) {
	// Figure 3d setup: everything on one network; both classes progress.
	m, _ := runRing(t, RingConfig{SharedNetwork: true}, 4, 1, 1, 2, 1500, 400)
	if m.Reads == 0 || m.Writes == 0 {
		t.Fatalf("shared-network run: reads=%d writes=%d", m.Reads, m.Writes)
	}
	if m.WriteRate() > 1.0 {
		t.Fatalf("shared-network write rate %v should be below dedicated-network rate", m.WriteRate())
	}
}

package simstore

import (
	"fmt"

	"repro/internal/netsim"
)

// BroadcastServer is the §1 strawman the paper's ring pattern replaces:
// writes are "simply broadcast to all servers" by the contacted server,
// which then waits for an ack from everyone (write-all-available, like
// the ring) before answering the client; reads are local. Under load the
// acks from n-1 servers converge on the coordinator's interface in the
// same round — with a collision-domain network (netsim.IngressCollide)
// they are retransmitted over and over, which is precisely the paper's
// argument: "a retransmission is thus necessary, in turn causing even
// more collisions, ultimately harming the throughput of write
// operations."
type BroadcastServer struct {
	IDNum   int
	Servers []int
	Cal     netsim.Calibration

	tag Tag
	val Value

	nextOp int
	ops    map[int]*bcastOp
	outbox []netsim.Send
	acks   []Response
}

// bcastOp tracks one coordinated write.
type bcastOp struct {
	req  Request
	tag  Tag
	acks int
}

// bcastWrite disseminates a write to every server.
type bcastWrite struct {
	Coord int
	OpID  int
	Tag   Tag
	Val   Value
}

// bcastAck confirms storage at one server.
type bcastAck struct {
	OpID int
}

var _ netsim.Process = (*BroadcastServer)(nil)

// ID implements netsim.Process.
func (s *BroadcastServer) ID() int { return s.IDNum }

// others returns every other server.
func (s *BroadcastServer) others() []int {
	out := make([]int, 0, len(s.Servers)-1)
	for _, id := range s.Servers {
		if id != s.IDNum {
			out = append(out, id)
		}
	}
	return out
}

// Tick implements netsim.Process.
func (s *BroadcastServer) Tick(round int, delivered []netsim.Message) []netsim.Send {
	if s.ops == nil {
		s.ops = make(map[int]*bcastOp)
	}
	for _, m := range delivered {
		switch p := m.Payload.(type) {
		case Request:
			if p.IsRead {
				s.acks = append(s.acks, Response{Client: p.Client, Seq: p.Seq, IsRead: true, Val: s.val})
				continue
			}
			s.nextOp++
			t := Tag{TS: s.tag.TS + 1, ID: s.IDNum}
			op := &bcastOp{req: p, tag: t, acks: 1} // own replica counts
			s.ops[s.nextOp] = op
			if s.tag.Less(t) {
				s.tag, s.val = t, p.Val
			}
			s.outbox = append(s.outbox, netsim.Send{
				NIC:     netsim.NICServer,
				To:      s.others(),
				Payload: bcastWrite{Coord: s.IDNum, OpID: s.nextOp, Tag: t, Val: p.Val},
				Bytes:   s.Cal.PayloadFrameBytes(),
			})
			s.maybeComplete(s.nextOp, op)
		case bcastWrite:
			if s.tag.Less(p.Tag) {
				s.tag, s.val = p.Tag, p.Val
			}
			s.outbox = append(s.outbox, netsim.Send{
				NIC:     netsim.NICServer,
				To:      []int{p.Coord},
				Payload: bcastAck{OpID: p.OpID},
				Bytes:   s.Cal.ControlFrameBytes(),
			})
		case bcastAck:
			op, ok := s.ops[p.OpID]
			if !ok {
				continue
			}
			op.acks++
			s.maybeComplete(p.OpID, op)
		default:
			panic(fmt.Sprintf("simstore: broadcast server got %T", m.Payload))
		}
	}
	var out []netsim.Send
	if len(s.outbox) > 0 {
		out = append(out, s.outbox[0])
		s.outbox = s.outbox[1:]
	}
	if len(s.acks) > 0 {
		resp := s.acks[0]
		s.acks = s.acks[1:]
		out = append(out, netsim.Send{
			NIC:     netsim.NICClient,
			To:      []int{resp.Client},
			Payload: resp,
			Bytes:   respBytes(s.Cal, resp.IsRead),
		})
	}
	return out
}

// maybeComplete acknowledges the client once every server stored the
// write (write-all, like the ring).
func (s *BroadcastServer) maybeComplete(opID int, op *bcastOp) {
	if op.acks < len(s.Servers) {
		return
	}
	delete(s.ops, opID)
	s.acks = append(s.acks, Response{Client: op.req.Client, Seq: op.req.Seq})
}

// Package simstore implements storage algorithms in the round-based
// network model of package netsim, instrumented for the throughput and
// latency measurements of the paper's evaluation (Figures 1, 3 and 4 and
// the analytical results of Section 4):
//
//   - RingServer — the paper's algorithm: ring dissemination with
//     pre-write/write phases, local reads, fairness, piggybacking.
//   - AlgoAServer / AlgoBServer — the two motivating algorithms of
//     Figure 1 (majority-contacting reads vs purely local reads).
//   - QuorumServer — an ABD-style majority-quorum register (the
//     "traditional" baseline the paper argues cannot scale).
//   - ChainServer — chain replication (writes down a chain, reads at the
//     tail), the paper's [28] comparison.
//   - TOBServer — storage over a ring total-order broadcast, the paper's
//     modular-alternative comparison (reads must be ordered too).
//
// All algorithms are driven by the same closed-loop Client processes and
// report into the same Metrics, so the bench harness can sweep server
// counts and compare series directly.
package simstore

import (
	"fmt"

	"repro/internal/netsim"
)

// Value identifies a written value in the simulation (values are
// symbolic; only their identity and size matter to the model).
type Value struct {
	// Writer is the client id that wrote the value.
	Writer int
	// Seq is the writer-local sequence number.
	Seq int
}

// IsZero reports whether v is the initial (never written) value.
func (v Value) IsZero() bool { return v == Value{} }

// Tag is the simulator's write version, mirroring internal/tag but over
// ints for convenience inside the model.
type Tag struct {
	// TS is the logical timestamp.
	TS int
	// ID is the originating server id (tiebreaker).
	ID int
}

// Less orders tags lexicographically.
func (t Tag) Less(o Tag) bool {
	if t.TS != o.TS {
		return t.TS < o.TS
	}
	return t.ID < o.ID
}

// AtLeast reports t >= o.
func (t Tag) AtLeast(o Tag) bool { return !t.Less(o) }

// After reports t > o.
func (t Tag) After(o Tag) bool { return o.Less(t) }

// Request is a client operation sent to a server.
type Request struct {
	// Client is the requesting process id.
	Client int
	// Seq correlates the response.
	Seq int
	// IsRead distinguishes reads from writes.
	IsRead bool
	// Val is the value to write.
	Val Value
}

// Response answers a Request.
type Response struct {
	// Client and Seq echo the request.
	Client int
	Seq    int
	// IsRead echoes the request kind.
	IsRead bool
	// Val is the value read (reads only).
	Val Value
}

// Metrics aggregates completions and latencies across all clients of a
// simulation run. Operations completing before WarmupRounds are excluded,
// so steady-state throughput is not diluted by pipeline fill.
type Metrics struct {
	// WarmupRounds excludes the run-up from the aggregates.
	WarmupRounds int

	// Reads/Writes count completed operations after warmup.
	Reads, Writes int
	// ReadLatency/WriteLatency accumulate latencies in rounds.
	ReadLatency, WriteLatency float64
	// measuredRounds is set by Finish.
	measuredRounds int
}

// record notes one completed operation.
func (m *Metrics) record(isRead bool, issued, completed int) {
	if completed < m.WarmupRounds {
		return
	}
	lat := float64(completed - issued)
	if isRead {
		m.Reads++
		m.ReadLatency += lat
	} else {
		m.Writes++
		m.WriteLatency += lat
	}
}

// Finish fixes the measurement window after a run of totalRounds.
func (m *Metrics) Finish(totalRounds int) {
	m.measuredRounds = totalRounds - m.WarmupRounds
	if m.measuredRounds < 0 {
		m.measuredRounds = 0
	}
}

// ReadRate returns completed reads per round in the measurement window.
func (m *Metrics) ReadRate() float64 {
	if m.measuredRounds == 0 {
		return 0
	}
	return float64(m.Reads) / float64(m.measuredRounds)
}

// WriteRate returns completed writes per round in the window.
func (m *Metrics) WriteRate() float64 {
	if m.measuredRounds == 0 {
		return 0
	}
	return float64(m.Writes) / float64(m.measuredRounds)
}

// MeanReadLatency returns the mean read latency in rounds.
func (m *Metrics) MeanReadLatency() float64 {
	if m.Reads == 0 {
		return 0
	}
	return m.ReadLatency / float64(m.Reads)
}

// MeanWriteLatency returns the mean write latency in rounds.
func (m *Metrics) MeanWriteLatency() float64 {
	if m.Writes == 0 {
		return 0
	}
	return m.WriteLatency / float64(m.Writes)
}

// Client is a closed-loop load generator: it keeps Pipeline requests
// outstanding against one server, alternating kinds according to its
// read fraction. One simulated Client models one of the paper's client
// machines (which "emulate multiple clients" by pipelining).
type Client struct {
	// IDNum is the process id.
	IDNum int
	// Server is the target server's process id.
	Server int
	// Reads selects read-only (true) or write-only (false) operation.
	Reads bool
	// Pipeline is the number of outstanding requests to maintain.
	Pipeline int
	// Cal sizes requests and replies.
	Cal netsim.Calibration
	// M receives completions.
	M *Metrics

	seq      int
	issuedAt map[int]int
	inflight int
}

var _ netsim.Process = (*Client)(nil)

// ID implements netsim.Process.
func (c *Client) ID() int { return c.IDNum }

// Tick implements netsim.Process.
func (c *Client) Tick(round int, delivered []netsim.Message) []netsim.Send {
	if c.issuedAt == nil {
		c.issuedAt = make(map[int]int)
	}
	for _, m := range delivered {
		resp, ok := m.Payload.(Response)
		if !ok {
			panic(fmt.Sprintf("simstore: client %d got %T", c.IDNum, m.Payload))
		}
		issued, ok := c.issuedAt[resp.Seq]
		if !ok {
			continue
		}
		delete(c.issuedAt, resp.Seq)
		c.inflight--
		c.M.record(resp.IsRead, issued, round)
	}
	// Issue at most one new request per round (one egress).
	if c.inflight >= c.Pipeline {
		return nil
	}
	c.seq++
	c.inflight++
	c.issuedAt[c.seq] = round
	req := Request{Client: c.IDNum, Seq: c.seq, IsRead: c.Reads}
	bytes := c.Cal.ControlFrameBytes()
	if !c.Reads {
		req.Val = Value{Writer: c.IDNum, Seq: c.seq}
		bytes = c.Cal.PayloadFrameBytes()
	}
	return []netsim.Send{{
		NIC:     netsim.NICClient,
		To:      []int{c.Server},
		Payload: req,
		Bytes:   bytes,
	}}
}

// respBytes returns the wire size of a response.
func respBytes(cal netsim.Calibration, isRead bool) int {
	if isRead {
		return cal.PayloadFrameBytes() // read acks carry the value
	}
	return cal.ControlFrameBytes() // write acks are tag-only
}

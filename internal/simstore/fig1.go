package simstore

import (
	"fmt"

	"repro/internal/netsim"
)

// This file implements the two motivating algorithms of the paper's
// Figure 1. Both serve read requests over three servers; the paper runs
// them in a model where a server receives at most one message per round,
// so all traffic shares one interface (run these with
// netsim.Config{SharedNetwork: true}).
//
// Algorithm A is the quorum-flavoured strawman: the contacted server
// consults its ring neighbor before answering (a 2-server "majority" of
// the 3). Algorithm B answers locally. Both have constant-round latency,
// but A's helper traffic consumes everyone's ingress slots: A tops out at
// ~1 operation per round system-wide while B completes one operation per
// server per round.

// helperQuery is A's consultation request.
type helperQuery struct {
	// Coord is the consulting server.
	Coord int
	// Seq correlates the reply.
	Seq int
}

// helperReply answers a helperQuery.
type helperReply struct {
	Seq int
	Val Value
}

// AlgoAServer consults one other server per read (Figure 1, left).
type AlgoAServer struct {
	IDNum int
	Ring  []int
	Cal   netsim.Calibration

	val Value

	nextSeq int
	waiting map[int]Request // helper seq -> client request
	outbox  []netsim.Send
}

var _ netsim.Process = (*AlgoAServer)(nil)

// ID implements netsim.Process.
func (s *AlgoAServer) ID() int { return s.IDNum }

// neighbor returns the server A consults.
func (s *AlgoAServer) neighbor() int {
	for i, id := range s.Ring {
		if id == s.IDNum {
			return s.Ring[(i+1)%len(s.Ring)]
		}
	}
	panic(fmt.Sprintf("simstore: server %d not in ring %v", s.IDNum, s.Ring))
}

// Tick implements netsim.Process.
func (s *AlgoAServer) Tick(round int, delivered []netsim.Message) []netsim.Send {
	if s.waiting == nil {
		s.waiting = make(map[int]Request)
	}
	for _, m := range delivered {
		switch p := m.Payload.(type) {
		case Request:
			if !p.IsRead {
				panic("simstore: algorithm A models reads only")
			}
			s.nextSeq++
			s.waiting[s.nextSeq] = p
			s.outbox = append(s.outbox, netsim.Send{
				NIC:     netsim.NICServer,
				To:      []int{s.neighbor()},
				Payload: helperQuery{Coord: s.IDNum, Seq: s.nextSeq},
				Bytes:   s.Cal.ControlFrameBytes(),
			})
		case helperQuery:
			s.outbox = append(s.outbox, netsim.Send{
				NIC:     netsim.NICServer,
				To:      []int{p.Coord},
				Payload: helperReply{Seq: p.Seq, Val: s.val},
				Bytes:   s.Cal.PayloadFrameBytes(),
			})
		case helperReply:
			req, ok := s.waiting[p.Seq]
			if !ok {
				continue
			}
			delete(s.waiting, p.Seq)
			s.outbox = append(s.outbox, netsim.Send{
				NIC:     netsim.NICClient,
				To:      []int{req.Client},
				Payload: Response{Client: req.Client, Seq: req.Seq, IsRead: true, Val: s.val},
				Bytes:   s.Cal.PayloadFrameBytes(),
			})
		default:
			panic(fmt.Sprintf("simstore: algorithm A got %T", m.Payload))
		}
	}
	// One egress slot per round (shared network).
	if len(s.outbox) == 0 {
		return nil
	}
	out := s.outbox[0]
	s.outbox = s.outbox[1:]
	return []netsim.Send{out}
}

// AlgoBServer answers reads locally (Figure 1, right).
type AlgoBServer struct {
	IDNum int
	Cal   netsim.Calibration

	val  Value
	acks []Response
}

var _ netsim.Process = (*AlgoBServer)(nil)

// ID implements netsim.Process.
func (s *AlgoBServer) ID() int { return s.IDNum }

// Tick implements netsim.Process.
func (s *AlgoBServer) Tick(round int, delivered []netsim.Message) []netsim.Send {
	for _, m := range delivered {
		req, ok := m.Payload.(Request)
		if !ok {
			panic(fmt.Sprintf("simstore: algorithm B got %T", m.Payload))
		}
		if !req.IsRead {
			panic("simstore: algorithm B models reads only")
		}
		s.acks = append(s.acks, Response{Client: req.Client, Seq: req.Seq, IsRead: true, Val: s.val})
	}
	if len(s.acks) == 0 {
		return nil
	}
	resp := s.acks[0]
	s.acks = s.acks[1:]
	return []netsim.Send{{
		NIC:     netsim.NICClient,
		To:      []int{resp.Client},
		Payload: resp,
		Bytes:   s.Cal.PayloadFrameBytes(),
	}}
}

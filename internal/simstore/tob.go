package simstore

import (
	"fmt"

	"repro/internal/netsim"
)

// TOBServer models the modular alternative the paper discusses and
// rejects: implement the storage on top of a ring total-order broadcast
// ([15] — itself the throughput-optimal TOB for this setting). Every
// operation — including reads, which must be totally ordered for
// atomicity — circulates the full ring before completing, so reads and
// writes together share a single pipeline of one operation per round
// regardless of the number of servers.
type TOBServer struct {
	IDNum int
	Ring  []int
	Cal   netsim.Calibration

	val Value

	forward []tobMsg
	acks    []Response
}

// tobMsg is one totally-ordered operation circulating the ring.
type tobMsg struct {
	Origin int
	Client int
	Seq    int
	IsRead bool
	Val    Value
}

var _ netsim.Process = (*TOBServer)(nil)

// ID implements netsim.Process.
func (s *TOBServer) ID() int { return s.IDNum }

// successor returns the ring successor.
func (s *TOBServer) successor() int {
	for i, id := range s.Ring {
		if id == s.IDNum {
			return s.Ring[(i+1)%len(s.Ring)]
		}
	}
	panic(fmt.Sprintf("simstore: server %d not in ring %v", s.IDNum, s.Ring))
}

// Tick implements netsim.Process.
func (s *TOBServer) Tick(round int, delivered []netsim.Message) []netsim.Send {
	for _, m := range delivered {
		switch p := m.Payload.(type) {
		case Request:
			s.forward = append(s.forward, tobMsg{
				Origin: s.IDNum,
				Client: p.Client,
				Seq:    p.Seq,
				IsRead: p.IsRead,
				Val:    p.Val,
			})
		case tobMsg:
			if p.Origin == s.IDNum {
				// Full circle: the operation is ordered; execute and
				// acknowledge.
				if !p.IsRead {
					s.val = p.Val
				}
				resp := Response{Client: p.Client, Seq: p.Seq, IsRead: p.IsRead}
				if p.IsRead {
					resp.Val = s.val
				}
				s.acks = append(s.acks, resp)
				continue
			}
			if !p.IsRead {
				s.val = p.Val // apply in ring order as it passes by
			}
			s.forward = append(s.forward, p)
		default:
			panic(fmt.Sprintf("simstore: tob server got %T", m.Payload))
		}
	}
	var out []netsim.Send
	if len(s.forward) > 0 {
		msg := s.forward[0]
		s.forward = s.forward[1:]
		bytes := s.Cal.PayloadFrameBytes()
		if msg.IsRead {
			bytes = s.Cal.ControlFrameBytes()
		}
		out = append(out, netsim.Send{
			NIC:     netsim.NICServer,
			To:      []int{s.successor()},
			Payload: msg,
			Bytes:   bytes,
		})
	}
	if len(s.acks) > 0 {
		resp := s.acks[0]
		s.acks = s.acks[1:]
		out = append(out, netsim.Send{
			NIC:     netsim.NICClient,
			To:      []int{resp.Client},
			Payload: resp,
			Bytes:   respBytes(s.Cal, resp.IsRead),
		})
	}
	return out
}

package simstore

import (
	"fmt"

	"repro/internal/netsim"
)

// ringMsg is one envelope on the simulated ring.
type ringMsg struct {
	// IsWrite distinguishes the write phase from the pre-write phase.
	IsWrite bool
	// Tag is the write version.
	Tag Tag
	// Origin is the server that initiated the write.
	Origin int
	// Val is the written value (pre-writes always; writes only when not
	// elided).
	Val Value
	// Elided marks a tag-only write-phase message.
	Elided bool
}

// ringFrame is what travels on one ring hop: one message, or two when a
// write-phase message is piggybacked onto a pre-write-phase one.
type ringFrame struct {
	Msgs []ringMsg
}

// RingConfig configures the simulated paper algorithm.
type RingConfig struct {
	// DisablePiggyback sends each ring message in its own frame.
	DisablePiggyback bool
	// DisableValueElision ships full values in write-phase messages.
	DisableValueElision bool
	// DisableFairness forwards FIFO and only initiates when idle.
	DisableFairness bool
	// SharedNetwork must match the simulator's configuration: with a
	// single physical interface the server may emit only one send per
	// round, so ring frames and client acks alternate (Figure 3d).
	SharedNetwork bool
}

// RingServer is the paper's storage algorithm in the round model.
type RingServer struct {
	IDNum int
	Ring  []int
	Cal   netsim.Calibration
	Cfg   RingConfig

	tag     Tag
	val     Value
	pending map[Tag]Value

	writeQueue []Request
	queues     map[int][]ringMsg
	order      []int
	nbMsg      map[int]int
	queued     int

	myWrites map[Tag]myWrite
	parked   []simParked
	acks     []Response
	// preferAck alternates the shared-network egress slot between ring
	// frames and client acks.
	preferAck bool
}

type myWrite struct {
	req     Request
	inWrite bool // write phase started
}

type simParked struct {
	req     Request
	barrier Tag
}

var _ netsim.Process = (*RingServer)(nil)

// ID implements netsim.Process.
func (s *RingServer) ID() int { return s.IDNum }

// successor returns the next server on the ring.
func (s *RingServer) successor() int {
	for i, id := range s.Ring {
		if id == s.IDNum {
			return s.Ring[(i+1)%len(s.Ring)]
		}
	}
	panic(fmt.Sprintf("simstore: server %d not in ring %v", s.IDNum, s.Ring))
}

// Tick implements netsim.Process: handle this round's deliveries, then
// emit at most one ring frame (fairness + piggybacking) and one client
// ack.
func (s *RingServer) Tick(round int, delivered []netsim.Message) []netsim.Send {
	if s.pending == nil {
		s.pending = make(map[Tag]Value)
		s.queues = make(map[int][]ringMsg)
		s.nbMsg = make(map[int]int)
		s.myWrites = make(map[Tag]myWrite)
	}
	for _, m := range delivered {
		switch p := m.Payload.(type) {
		case ringFrame:
			for _, rm := range p.Msgs {
				s.handleRing(rm)
			}
		case Request:
			s.handleRequest(p)
		default:
			panic(fmt.Sprintf("simstore: ring server got %T", m.Payload))
		}
	}

	if s.Cfg.SharedNetwork {
		return s.sharedEgress()
	}
	var out []netsim.Send
	if send, ok := s.ringSend(); ok {
		out = append(out, send)
	}
	if send, ok := s.ackSend(); ok {
		out = append(out, send)
	}
	return out
}

// ringSend builds this round's ring frame, if any.
func (s *RingServer) ringSend() (netsim.Send, bool) {
	frame, bytes, ok := s.nextRingFrame()
	if !ok {
		return netsim.Send{}, false
	}
	return netsim.Send{
		NIC:     netsim.NICServer,
		To:      []int{s.successor()},
		Payload: frame,
		Bytes:   bytes,
	}, true
}

// ackSend pops one queued client ack, if any.
func (s *RingServer) ackSend() (netsim.Send, bool) {
	if len(s.acks) == 0 {
		return netsim.Send{}, false
	}
	resp := s.acks[0]
	s.acks = s.acks[1:]
	return netsim.Send{
		NIC:     netsim.NICClient,
		To:      []int{resp.Client},
		Payload: resp,
		Bytes:   respBytes(s.Cal, resp.IsRead),
	}, true
}

// sharedEgress emits at most one send per round, alternating between
// client acks and ring frames when both are pending.
func (s *RingServer) sharedEgress() []netsim.Send {
	s.preferAck = !s.preferAck
	if s.preferAck {
		if send, ok := s.ackSend(); ok {
			return []netsim.Send{send}
		}
		if send, ok := s.ringSend(); ok {
			return []netsim.Send{send}
		}
		return nil
	}
	if send, ok := s.ringSend(); ok {
		return []netsim.Send{send}
	}
	if send, ok := s.ackSend(); ok {
		return []netsim.Send{send}
	}
	return nil
}

// handleRequest implements the client-facing part: queue writes, serve or
// park reads.
func (s *RingServer) handleRequest(req Request) {
	if !req.IsRead {
		s.writeQueue = append(s.writeQueue, req)
		return
	}
	if barrier, blocked := s.readBarrier(); blocked {
		s.parked = append(s.parked, simParked{req: req, barrier: barrier})
		return
	}
	s.acks = append(s.acks, Response{Client: req.Client, Seq: req.Seq, IsRead: true, Val: s.val})
}

// readBarrier reports whether reads must wait, and for which tag.
func (s *RingServer) readBarrier() (Tag, bool) {
	var highest Tag
	for t := range s.pending {
		if highest.Less(t) {
			highest = t
		}
	}
	if len(s.pending) == 0 || s.tag.AtLeast(highest) {
		return Tag{}, false
	}
	return highest, true
}

// apply installs (t, v) if newer and releases satisfied parked reads.
func (s *RingServer) apply(t Tag, v Value) {
	if !t.After(s.tag) {
		return
	}
	s.tag, s.val = t, v
	rest := s.parked[:0]
	for _, p := range s.parked {
		if s.tag.AtLeast(p.barrier) {
			s.acks = append(s.acks, Response{Client: p.req.Client, Seq: p.req.Seq, IsRead: true, Val: s.val})
		} else {
			rest = append(rest, p)
		}
	}
	s.parked = rest
}

// prune drops pending entries at or below t.
func (s *RingServer) prune(t Tag) {
	for pt := range s.pending {
		if !pt.After(t) {
			delete(s.pending, pt)
		}
	}
}

// handleRing processes one ring envelope (paper lines 29-52).
func (s *RingServer) handleRing(m ringMsg) {
	if m.Origin == s.IDNum {
		if !m.IsWrite {
			// Own pre-write returned: start the write phase.
			w, ok := s.myWrites[m.Tag]
			if !ok || w.inWrite {
				return
			}
			w.inWrite = true
			s.myWrites[m.Tag] = w
			s.apply(m.Tag, m.Val)
			s.prune(m.Tag)
			s.push(ringMsg{
				IsWrite: true,
				Tag:     m.Tag,
				Origin:  s.IDNum,
				Val:     m.Val,
				Elided:  !s.Cfg.DisableValueElision,
			})
			return
		}
		// Own write returned: acknowledge the client.
		if w, ok := s.myWrites[m.Tag]; ok && w.inWrite {
			delete(s.myWrites, m.Tag)
			s.acks = append(s.acks, Response{Client: w.req.Client, Seq: w.req.Seq})
		}
		return
	}
	if m.IsWrite {
		v, haveVal := m.Val, !m.Elided
		if m.Elided {
			v, haveVal = s.pending[m.Tag], true
			if _, ok := s.pending[m.Tag]; !ok {
				haveVal = false
			}
		}
		if haveVal {
			s.apply(m.Tag, v)
		}
		s.prune(m.Tag)
	}
	s.push(m)
}

// push enqueues a message for forwarding.
func (s *RingServer) push(m ringMsg) {
	if _, seen := s.queues[m.Origin]; !seen {
		s.queues[m.Origin] = nil
		s.order = append(s.order, m.Origin)
	}
	s.queues[m.Origin] = append(s.queues[m.Origin], m)
	s.queued++
}

// popFirst removes the first queued message of the given phase from an
// origin's queue (wantWrite: -1 any, 0 pre-write, 1 write).
func (s *RingServer) popFirst(origin, wantWrite int) (ringMsg, bool) {
	q := s.queues[origin]
	for i, m := range q {
		if wantWrite == -1 || (wantWrite == 1) == m.IsWrite {
			s.queues[origin] = append(q[:i], q[i+1:]...)
			s.queued--
			return m, true
		}
	}
	return ringMsg{}, false
}

// hasKind reports whether origin has a queued message of the phase.
func (s *RingServer) hasKind(origin, wantWrite int) bool {
	for _, m := range s.queues[origin] {
		if wantWrite == -1 || (wantWrite == 1) == m.IsWrite {
			return true
		}
	}
	return false
}

// selectOrigin picks the least-served origin holding a message of the
// phase; includeSelf offers initiation.
func (s *RingServer) selectOrigin(includeSelf bool, wantWrite int) (int, bool) {
	best, bestCount, found := 0, 0, false
	for _, origin := range s.order {
		if !s.hasKind(origin, wantWrite) {
			continue
		}
		c := s.nbMsg[origin]
		if !found || c < bestCount {
			best, bestCount, found = origin, c, true
		}
	}
	if includeSelf && !found {
		return s.IDNum, true
	}
	if includeSelf && s.nbMsg[s.IDNum] < bestCount && len(s.queues[s.IDNum]) == 0 {
		return s.IDNum, true
	}
	return best, found
}

// initiate starts writeQueue[0] (paper lines 21-28).
func (s *RingServer) initiate() ringMsg {
	req := s.writeQueue[0]
	s.writeQueue = s.writeQueue[1:]
	highest := s.tag
	for t := range s.pending {
		if highest.Less(t) {
			highest = t
		}
	}
	t := Tag{TS: highest.TS + 1, ID: s.IDNum}
	s.pending[t] = req.Val
	s.myWrites[t] = myWrite{req: req}
	s.nbMsg[s.IDNum]++
	return ringMsg{Tag: t, Origin: s.IDNum, Val: req.Val}
}

// nextRingFrame runs the queue handler: one frame per round, fairness
// selection, optional piggybacking of the opposite phase.
func (s *RingServer) nextRingFrame() (ringFrame, int, bool) {
	var msgs []ringMsg
	if s.Cfg.DisableFairness {
		if m, ok := s.popAnyFIFO(); ok {
			msgs = append(msgs, m)
		} else if len(s.writeQueue) > 0 {
			msgs = append(msgs, s.initiate())
		}
	} else {
		msgs = s.fairSelection()
	}
	if len(msgs) == 0 {
		return ringFrame{}, 0, false
	}
	bytes := 0
	for _, m := range msgs {
		if m.IsWrite && m.Elided {
			bytes += s.Cal.ControlFrameBytes()
		} else {
			bytes += s.Cal.PayloadFrameBytes()
		}
	}
	return ringFrame{Msgs: msgs}, bytes, true
}

// fairSelection applies paper lines 53-75 plus piggybacking.
func (s *RingServer) fairSelection() []ringMsg {
	var msgs []ringMsg
	if s.queued == 0 {
		s.nbMsg = make(map[int]int) // paper line 55
		if len(s.writeQueue) == 0 {
			return nil
		}
		msgs = append(msgs, s.initiate())
	} else {
		origin, ok := s.selectOrigin(len(s.writeQueue) > 0, -1)
		if !ok {
			return nil
		}
		if origin == s.IDNum && len(s.queues[s.IDNum]) == 0 {
			msgs = append(msgs, s.initiate())
		} else {
			m, _ := s.popFirst(origin, -1)
			s.nbMsg[origin]++
			s.forwarded(m)
			msgs = append(msgs, m)
		}
	}
	if s.Cfg.DisablePiggyback {
		return msgs
	}
	// Piggyback one message of the opposite phase. When the frame's
	// pre-write slot would stay empty but local client writes are
	// queued, initiating one fills it — without this, a loaded server
	// alternates pre-write and write rounds and the write throughput
	// halves.
	want := 1
	if msgs[0].IsWrite {
		want = 0
	}
	if origin, ok := s.selectOrigin(false, want); ok {
		if m, ok := s.popFirst(origin, want); ok {
			s.nbMsg[origin]++
			s.forwarded(m)
			msgs = append(msgs, m)
		}
	} else if want == 0 && len(s.writeQueue) > 0 {
		msgs = append(msgs, s.initiate())
	}
	if s.queued == 0 {
		s.nbMsg = make(map[int]int)
	}
	return msgs
}

// forwarded applies the on-forward pending rule (paper line 71).
func (s *RingServer) forwarded(m ringMsg) {
	if !m.IsWrite {
		s.pending[m.Tag] = m.Val
	}
}

// popAnyFIFO removes the oldest queued message (fairness ablation).
func (s *RingServer) popAnyFIFO() (ringMsg, bool) {
	for _, origin := range s.order {
		if len(s.queues[origin]) > 0 {
			m, ok := s.popFirst(origin, -1)
			if ok {
				s.forwarded(m)
			}
			return m, ok
		}
	}
	return ringMsg{}, false
}

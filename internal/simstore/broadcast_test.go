package simstore

import (
	"testing"

	"repro/internal/netsim"
)

// broadcastDeployment builds a naive-broadcast cluster with writer
// clients on every server.
func broadcastDeployment(ingress netsim.IngressPolicy, n, writersPer, pipeline, warmup int) (*netsim.Simulator, *Metrics) {
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: warmup}
	servers := make([]int, n)
	for i := range servers {
		servers[i] = i + 1
	}
	var procs []netsim.Process
	for _, id := range servers {
		procs = append(procs, &BroadcastServer{IDNum: id, Servers: servers, Cal: cal})
	}
	next := 1000
	for _, id := range servers {
		for w := 0; w < writersPer; w++ {
			next++
			procs = append(procs, &Client{IDNum: next, Server: id, Reads: false, Pipeline: pipeline, Cal: cal, M: m})
		}
	}
	return netsim.MustNew(netsim.Config{Ingress: ingress}, procs...), m
}

func TestBroadcastFunctional(t *testing.T) {
	sim, m := broadcastDeployment(netsim.IngressSerialize, 3, 1, 1, 0)
	sim.Run(300)
	m.Finish(300)
	if m.Writes == 0 {
		t.Fatal("broadcast writes never complete")
	}
}

// TestBroadcastCollisionsHurtWrites reproduces the paper's §1 argument:
// with a collision-domain network, concurrent broadcast writes trigger
// retransmissions and throughput drops well below the switched case,
// while the ring is unaffected because each link has a single sender.
func TestBroadcastCollisionsHurtWrites(t *testing.T) {
	const n, writers, pipeline, rounds, warmup = 5, 2, 4, 2000, 400

	switched, ms := broadcastDeployment(netsim.IngressSerialize, n, writers, pipeline, warmup)
	switched.Run(rounds)
	ms.Finish(rounds)

	colliding, mc := broadcastDeployment(netsim.IngressCollide, n, writers, pipeline, warmup)
	colliding.Run(rounds)
	mc.Finish(rounds)

	if colliding.Stats().Retransmissions == 0 {
		t.Fatal("collision mode recorded no retransmissions for broadcast traffic")
	}
	if mc.WriteRate() > 0.8*ms.WriteRate() {
		t.Fatalf("collisions did not hurt broadcast writes: collide=%v switched=%v",
			mc.WriteRate(), ms.WriteRate())
	}

	// The ring under the same collision-domain policy loses nothing:
	// its communication pattern has exactly one sender per link.
	ringSwitched := ringRate(t, netsim.IngressSerialize)
	ringColliding := ringRate(t, netsim.IngressCollide)
	if ringColliding < 0.95*ringSwitched {
		t.Fatalf("ring writes degraded under collisions: collide=%v switched=%v",
			ringColliding, ringSwitched)
	}
}

// ringRate measures the ring's saturated write rate under a policy.
func ringRate(t *testing.T, ingress netsim.IngressPolicy) float64 {
	t.Helper()
	cal := netsim.DefaultCalibration()
	m := &Metrics{WarmupRounds: 400}
	ring := []int{1, 2, 3, 4, 5}
	var procs []netsim.Process
	for _, id := range ring {
		procs = append(procs, &RingServer{IDNum: id, Ring: ring, Cal: cal})
	}
	next := 1000
	for _, id := range ring {
		for w := 0; w < 2; w++ {
			next++
			procs = append(procs, &Client{IDNum: next, Server: id, Reads: false, Pipeline: 2, Cal: cal, M: m})
		}
	}
	sim := netsim.MustNew(netsim.Config{Ingress: ingress}, procs...)
	sim.Run(1500)
	m.Finish(1500)
	if sim.Stats().Retransmissions > 0 && ingress == netsim.IngressCollide {
		// Ring links have one sender each; only the client NIC could
		// ever collide, and with one client per... two writers per
		// server the request pattern may occasionally overlap. Ring
		// (server NIC) traffic itself must never collide; allow small
		// client-side noise but flag systematic collisions.
		if sim.Stats().Retransmissions > 1500 {
			t.Fatalf("unexpectedly many retransmissions on ring deployment: %d",
				sim.Stats().Retransmissions)
		}
	}
	return m.WriteRate()
}

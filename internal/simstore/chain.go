package simstore

import (
	"fmt"

	"repro/internal/netsim"
)

// ChainServer implements chain replication (van Renesse & Schneider,
// OSDI 2004 — the paper's reference [28]): writes enter at the head,
// propagate down the chain, and are acknowledged by the tail; reads are
// served by the tail alone. Write throughput pipelines at one per round
// like the ring, but read throughput is pinned to the single tail —
// the contrast motivating the paper's locally-served reads.
type ChainServer struct {
	IDNum int
	Chain []int
	Cal   netsim.Calibration

	seq int // head-assigned write sequence
	val Value

	forward []chainMsg
	acks    []Response
}

// chainMsg carries a write down the chain.
type chainMsg struct {
	Client int
	Seq    int
	Val    Value
}

var _ netsim.Process = (*ChainServer)(nil)

// ID implements netsim.Process.
func (s *ChainServer) ID() int { return s.IDNum }

// isHead/isTail locate the server in the chain.
func (s *ChainServer) isHead() bool { return s.Chain[0] == s.IDNum }
func (s *ChainServer) isTail() bool { return s.Chain[len(s.Chain)-1] == s.IDNum }

// next returns the chain successor.
func (s *ChainServer) next() int {
	for i, id := range s.Chain {
		if id == s.IDNum {
			return s.Chain[i+1]
		}
	}
	panic(fmt.Sprintf("simstore: server %d not in chain %v", s.IDNum, s.Chain))
}

// Tick implements netsim.Process.
func (s *ChainServer) Tick(round int, delivered []netsim.Message) []netsim.Send {
	for _, m := range delivered {
		switch p := m.Payload.(type) {
		case Request:
			if p.IsRead {
				if !s.isTail() {
					panic("simstore: chain reads must target the tail")
				}
				s.acks = append(s.acks, Response{Client: p.Client, Seq: p.Seq, IsRead: true, Val: s.val})
				continue
			}
			if !s.isHead() {
				panic("simstore: chain writes must target the head")
			}
			s.seq++
			s.val = p.Val
			if s.isTail() { // one-server chain: head and tail coincide
				s.acks = append(s.acks, Response{Client: p.Client, Seq: p.Seq})
				continue
			}
			s.forward = append(s.forward, chainMsg{Client: p.Client, Seq: p.Seq, Val: p.Val})
		case chainMsg:
			s.val = p.Val
			if s.isTail() {
				s.acks = append(s.acks, Response{Client: p.Client, Seq: p.Seq})
			} else {
				s.forward = append(s.forward, p)
			}
		default:
			panic(fmt.Sprintf("simstore: chain server got %T", m.Payload))
		}
	}
	var out []netsim.Send
	if len(s.forward) > 0 && !s.isTail() {
		msg := s.forward[0]
		s.forward = s.forward[1:]
		out = append(out, netsim.Send{
			NIC:     netsim.NICServer,
			To:      []int{s.next()},
			Payload: msg,
			Bytes:   s.Cal.PayloadFrameBytes(),
		})
	}
	if len(s.acks) > 0 {
		resp := s.acks[0]
		s.acks = s.acks[1:]
		out = append(out, netsim.Send{
			NIC:     netsim.NICClient,
			To:      []int{resp.Client},
			Payload: resp,
			Bytes:   respBytes(s.Cal, resp.IsRead),
		})
	}
	return out
}

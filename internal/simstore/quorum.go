package simstore

import (
	"fmt"

	"repro/internal/netsim"
)

// QuorumServer is the traditional majority-quorum baseline (ABD-style,
// multi-writer): the contacted server coordinates a two-phase protocol,
// multicasting to all servers and waiting for a majority in each phase.
// This is the class of algorithms the paper argues cannot scale: every
// operation consumes an ingress slot at every server (the query
// multicast) plus a majority of reply slots at the coordinator, so adding
// servers does not add throughput (see [25] in the paper for the formal
// version of this argument).
type QuorumServer struct {
	IDNum   int
	Servers []int
	Cal     netsim.Calibration

	tag Tag
	val Value

	nextOp int
	ops    map[int]*quorumOp
	outbox []netsim.Send
	acks   []Response
}

// quorumOp is coordinator-side per-operation state.
type quorumOp struct {
	req     Request
	phase   int // 1: query, 2: store/write-back
	replies int
	maxTag  Tag
	maxVal  Value
}

// qQuery is a coordinator's message to every server.
type qQuery struct {
	Coord int
	OpID  int
	Phase int
	// Store payload (phase 2).
	Tag Tag
	Val Value
}

// qReply answers a qQuery.
type qReply struct {
	OpID  int
	Phase int
	Tag   Tag
	Val   Value
}

var _ netsim.Process = (*QuorumServer)(nil)

// ID implements netsim.Process.
func (s *QuorumServer) ID() int { return s.IDNum }

// majority returns the quorum size.
func (s *QuorumServer) majority() int { return len(s.Servers)/2 + 1 }

// others returns every server but this one.
func (s *QuorumServer) others() []int {
	out := make([]int, 0, len(s.Servers)-1)
	for _, id := range s.Servers {
		if id != s.IDNum {
			out = append(out, id)
		}
	}
	return out
}

// Tick implements netsim.Process.
func (s *QuorumServer) Tick(round int, delivered []netsim.Message) []netsim.Send {
	if s.ops == nil {
		s.ops = make(map[int]*quorumOp)
	}
	for _, m := range delivered {
		switch p := m.Payload.(type) {
		case Request:
			s.startOp(p)
		case qQuery:
			s.handleQuery(p)
		case qReply:
			s.handleReply(p)
		default:
			panic(fmt.Sprintf("simstore: quorum server got %T", m.Payload))
		}
	}
	var out []netsim.Send
	if len(s.outbox) > 0 {
		out = append(out, s.outbox[0])
		s.outbox = s.outbox[1:]
	}
	if len(s.acks) > 0 {
		resp := s.acks[0]
		s.acks = s.acks[1:]
		out = append(out, netsim.Send{
			NIC:     netsim.NICClient,
			To:      []int{resp.Client},
			Payload: resp,
			Bytes:   respBytes(s.Cal, resp.IsRead),
		})
	}
	return out
}

// startOp begins the two-phase protocol for a client request. Phase 1
// queries every other server for its tag (and value, for reads); the
// coordinator's own replica counts as the first reply.
func (s *QuorumServer) startOp(req Request) {
	s.nextOp++
	op := &quorumOp{req: req, phase: 1, replies: 1, maxTag: s.tag, maxVal: s.val}
	s.ops[s.nextOp] = op
	s.outbox = append(s.outbox, netsim.Send{
		NIC:     netsim.NICServer,
		To:      s.others(),
		Payload: qQuery{Coord: s.IDNum, OpID: s.nextOp, Phase: 1},
		Bytes:   s.Cal.ControlFrameBytes(),
	})
	s.maybeAdvance(s.nextOp, op)
}

// handleQuery serves another coordinator's phase message.
func (s *QuorumServer) handleQuery(q qQuery) {
	switch q.Phase {
	case 1:
		s.outbox = append(s.outbox, netsim.Send{
			NIC:     netsim.NICServer,
			To:      []int{q.Coord},
			Payload: qReply{OpID: q.OpID, Phase: 1, Tag: s.tag, Val: s.val},
			Bytes:   s.Cal.PayloadFrameBytes(), // carries the value
		})
	case 2:
		if s.tag.Less(q.Tag) {
			s.tag, s.val = q.Tag, q.Val
		}
		s.outbox = append(s.outbox, netsim.Send{
			NIC:     netsim.NICServer,
			To:      []int{q.Coord},
			Payload: qReply{OpID: q.OpID, Phase: 2},
			Bytes:   s.Cal.ControlFrameBytes(),
		})
	}
}

// handleReply advances the coordinator state machine.
func (s *QuorumServer) handleReply(r qReply) {
	op, ok := s.ops[r.OpID]
	if !ok || op.phase != r.Phase {
		return
	}
	op.replies++
	if r.Phase == 1 && op.maxTag.Less(r.Tag) {
		op.maxTag, op.maxVal = r.Tag, r.Val
	}
	s.maybeAdvance(r.OpID, op)
}

// maybeAdvance moves an op to phase 2 or completion once a majority
// answered the current phase.
func (s *QuorumServer) maybeAdvance(opID int, op *quorumOp) {
	if op.replies < s.majority() {
		return
	}
	switch op.phase {
	case 1:
		var storeTag Tag
		var storeVal Value
		if op.req.IsRead {
			// Write-back the freshest value read.
			storeTag, storeVal = op.maxTag, op.maxVal
		} else {
			storeTag = Tag{TS: op.maxTag.TS + 1, ID: s.IDNum}
			storeVal = op.req.Val
		}
		op.phase, op.replies = 2, 1
		op.maxTag, op.maxVal = storeTag, storeVal
		if s.tag.Less(storeTag) {
			s.tag, s.val = storeTag, storeVal
		}
		s.outbox = append(s.outbox, netsim.Send{
			NIC:     netsim.NICServer,
			To:      s.others(),
			Payload: qQuery{Coord: s.IDNum, OpID: opID, Phase: 2, Tag: storeTag, Val: storeVal},
			Bytes:   s.Cal.PayloadFrameBytes(),
		})
	case 2:
		delete(s.ops, opID)
		resp := Response{Client: op.req.Client, Seq: op.req.Seq, IsRead: op.req.IsRead}
		if op.req.IsRead {
			resp.Val = op.maxVal
		}
		s.acks = append(s.acks, resp)
	}
}

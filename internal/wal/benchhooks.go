// Bench hooks: exported entry points for the hot-path microbenchmarks
// in internal/bench and the repo-root bench_test.go, so the JSON report
// and `go test -bench` measure identical loops. They expose internal
// mechanics (the unsynced lane flush) no production caller needs.

package wal

import (
	"time"

	"repro/internal/tag"
)

// AppendBench measures the append path — encode, CRC, copy into the
// lane's staging buffer — in isolation: the log is opened with the
// syncer parked (hour-long interval, unbounded batch), and the staged
// bytes are discarded every few thousand records to bound growth. In
// production the disk write and sync are paid by the syncer goroutine
// (the group-commit sweep measures those); this is the cost a lane's
// event loop pays per committed envelope. Amortized 0 allocs/op.
type AppendBench struct {
	l   *Log
	rec Record
	n   uint64
}

// NewAppendBench opens the harness over dir with valueBytes-sized
// record values.
func NewAppendBench(dir string, valueBytes int) (*AppendBench, error) {
	l, err := Open(Config{
		Dir:           dir,
		Lanes:         1,
		Sync:          SyncInterval,
		FlushInterval: time.Hour,
		BatchBytes:    1 << 30,
	}, nil)
	if err != nil {
		return nil, err
	}
	return &AppendBench{
		l:   l,
		rec: Record{Type: RecPreWrite, Object: 7, Origin: 2, Flags: FlagHasValue, Value: make([]byte, valueBytes)},
	}, nil
}

// Append stages n records on lane 0.
func (ab *AppendBench) Append(n int) {
	for i := 0; i < n; i++ {
		ab.n++
		ab.rec.Tag = tag.Tag{TS: ab.n, ID: 2}
		ab.l.Append(0, &ab.rec)
		if ab.n%8192 == 0 {
			ll := &ab.l.lanes[0]
			ll.mu.Lock()
			ll.buf = ll.buf[:0]
			ll.leaves = ll.leaves[:0]
			ll.mu.Unlock()
		}
	}
}

// Close discards the harness.
func (ab *AppendBench) Close() { ab.l.Kill() }

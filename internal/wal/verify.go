package wal

import (
	"fmt"
	"os"
)

// VerifyResult summarizes an offline scan of one WAL directory.
type VerifyResult struct {
	Lanes    int
	Segments int
	Records  uint64 // data records scanned
	Roots    uint64 // audit root records checked
	Unrooted uint64 // data records past the last root (never synced under audit, or audit off)
	TornTail bool   // the newest segment of some lane ends mid-record (repairable)
}

// Verify scans every lane of a WAL directory read-only: CRC-checks all
// records and, where audit roots are present, recomputes each batch's
// Merkle root and checks the Prev chain between consecutive roots. The
// first root of a lane's oldest surviving segment anchors the chain
// (compaction may have retired its predecessors). Corruption anywhere
// but the repairable tail of a lane's newest segment is an error.
func Verify(dir string) (VerifyResult, error) {
	var res VerifyResult
	lanes, err := manifestLanes(dir)
	if err != nil {
		return res, err
	}
	res.Lanes = lanes
	for lane := 0; lane < lanes; lane++ {
		segs, err := listSegments(dir, lane)
		if err != nil {
			return res, err
		}
		res.Segments += len(segs)
		var (
			prevRoot [32]byte
			haveRoot bool
			leaves   [][32]byte
		)
		for i, seg := range segs {
			last := i == len(segs)-1
			data, err := os.ReadFile(segPath(dir, lane, seg))
			if err != nil {
				return res, err
			}
			if err := checkSegHeader(data, lane, seg); err != nil {
				if last {
					res.TornTail = true
					continue
				}
				return res, fmt.Errorf("lane %d segment %d: %w", lane, seg, err)
			}
			off := segHeaderSize
			for off < len(data) {
				rec, n, err := decodeRecord(data[off:])
				if err != nil {
					if last {
						res.TornTail = true
						break
					}
					return res, fmt.Errorf("lane %d segment %d offset %d: %w", lane, seg, off, err)
				}
				if rec.Type == RecRoot {
					res.Roots++
					if uint32(len(leaves)) != rec.Count {
						return res, fmt.Errorf("lane %d segment %d offset %d: root covers %d records, batch has %d",
							lane, seg, off, rec.Count, len(leaves))
					}
					if haveRoot && rec.Prev != prevRoot {
						return res, fmt.Errorf("lane %d segment %d offset %d: root chain broken (prev mismatch)",
							lane, seg, off)
					}
					if got := merkleFold(leaves); got != rec.Root {
						return res, fmt.Errorf("lane %d segment %d offset %d: batch root mismatch", lane, seg, off)
					}
					prevRoot, haveRoot = rec.Root, true
					leaves = leaves[:0]
				} else {
					res.Records++
					leaves = append(leaves, leafHash(data[off+frameHeaderSize:off+n]))
				}
				off += n
			}
		}
		res.Unrooted += uint64(len(leaves))
	}
	return res, nil
}

// Package wal is the durable write-ahead log behind the ring server: a
// per-lane segmented append-only log whose fsync is amortized per frame
// train (DESIGN.md §13). Records are length-prefixed and CRC32C-framed
// with a versioned header; appends stage into an in-memory lane buffer
// and reach the file only at a sync pass, so a killed process loses
// exactly what a crashed machine would — everything after the last
// covering sync — even when the test runs on a real filesystem.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/tag"
	"repro/internal/wire"
)

// RecordType discriminates the five WAL record kinds. The numbering is
// part of the on-disk format; new kinds append, existing ones never
// renumber.
type RecordType uint8

const (
	// RecInit logs a locally initiated write at ring-commit time: the
	// pre-write's tag, the requesting client, and the value. Synced
	// before the initiation frame leaves (train mode), so a restart can
	// re-circulate the pre-write instead of leaving ghost barriers at
	// peers that logged it.
	RecInit RecordType = 1
	// RecPreWrite logs a forwarded pre-write as it enters the pending
	// set, synced before the forward leaves this server.
	RecPreWrite RecordType = 2
	// RecWrite logs a write-phase apply. The value is elided
	// (FlagHasValue clear) when the covering RecInit/RecPreWrite already
	// carries it; replay resolves elided writes from the replayed
	// pending set, mirroring the wire protocol's value elision.
	RecWrite RecordType = 3
	// RecAck logs that the client ack for an own write was issued; it
	// only trims replayed retransmission. Losing one costs a duplicate
	// ack, never an atomicity violation.
	RecAck RecordType = 4
	// RecRoot is the tamper-evident audit record: the Merkle root over
	// the payload hashes of the records in one sync batch, chained to
	// the previous batch root. Written only with Config.MerkleRoots.
	RecRoot RecordType = 5
)

// Record flag bits (the Flags byte travels verbatim; unknown bits are
// preserved for forward compatibility).
const (
	// FlagHasValue marks a record that carries the write's value.
	FlagHasValue = 1 << 0
	// FlagPhaseWrite marks a compaction-snapshot RecInit whose write
	// already entered the write phase (value circulating, ack pending).
	FlagPhaseWrite = 1 << 1
)

// Record is one logical WAL entry. Decoded Values are freshly
// allocated and owned by the caller; encoded Values are copied into the
// lane's staging buffer at Append time and never referenced afterwards
// (the §7/§10 ownership rule: the log takes a copy, not the buffer).
type Record struct {
	Type   RecordType
	Object wire.ObjectID
	Tag    tag.Tag
	Origin wire.ProcessID
	Client wire.ProcessID
	ReqID  uint64
	Flags  uint8
	Value  []byte

	// Audit-root fields, meaningful only when Type == RecRoot.
	Count uint32   // records covered by this batch root
	Prev  [32]byte // previous batch root (chain link)
	Root  [32]byte // Merkle root over the batch's payload hashes
}

const (
	recVersion = 1

	// frameHeaderSize prefixes every record: u32 payload length then
	// u32 CRC32C (Castagnoli) of the payload.
	frameHeaderSize = 8
	// dataFixedSize is the payload size of a value-less data record:
	// version, type, flags, object, tag.TS, tag.ID, origin, client,
	// reqID, value length.
	dataFixedSize = 1 + 1 + 1 + 4 + 8 + 4 + 4 + 4 + 8 + 4
	// rootPayloadSize is the fixed payload of a RecRoot record:
	// version, type, count, prev root, batch root.
	rootPayloadSize = 1 + 1 + 4 + 32 + 32

	// MaxRecordBytes bounds a single record's payload; anything larger
	// in a length prefix is corruption, not data.
	MaxRecordBytes = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. A torn record (clean truncation mid-record) and a
// corrupt one (CRC/field mismatch) are both repaired by truncation when
// they end the newest segment, and both fatal anywhere else.
var (
	ErrTorn    = errors.New("wal: torn record")
	ErrCorrupt = errors.New("wal: corrupt record")
)

// appendRecord encodes r as one framed record at the end of buf and
// returns the extended slice. Amortized zero allocations: growth is
// absorbed by the staging buffer's capacity.
func appendRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header, patched below
	if r.Type == RecRoot {
		buf = append(buf, recVersion, byte(r.Type))
		buf = binary.LittleEndian.AppendUint32(buf, r.Count)
		buf = append(buf, r.Prev[:]...)
		buf = append(buf, r.Root[:]...)
	} else {
		buf = append(buf, recVersion, byte(r.Type), r.Flags)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Object))
		buf = binary.LittleEndian.AppendUint64(buf, r.Tag.TS)
		buf = binary.LittleEndian.AppendUint32(buf, r.Tag.ID)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Origin))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Client))
		buf = binary.LittleEndian.AppendUint64(buf, r.ReqID)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Value)))
		buf = append(buf, r.Value...)
	}
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// decodeRecord decodes the record framed at the start of b, returning
// it with the number of bytes consumed. ErrTorn means b ends mid-record
// (repairable tail); ErrCorrupt means the frame is structurally present
// but fails the CRC or field validation.
func decodeRecord(b []byte) (Record, int, error) {
	var r Record
	if len(b) < frameHeaderSize {
		return r, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 2 || n > MaxRecordBytes {
		return r, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	if uint32(len(b)-frameHeaderSize) < n {
		return r, 0, ErrTorn
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return r, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if payload[0] != recVersion {
		return r, 0, fmt.Errorf("%w: unsupported record version %d", ErrCorrupt, payload[0])
	}
	r.Type = RecordType(payload[1])
	switch r.Type {
	case RecRoot:
		if len(payload) != rootPayloadSize {
			return r, 0, fmt.Errorf("%w: root payload %d bytes, want %d", ErrCorrupt, len(payload), rootPayloadSize)
		}
		r.Count = binary.LittleEndian.Uint32(payload[2:])
		copy(r.Prev[:], payload[6:38])
		copy(r.Root[:], payload[38:70])
	case RecInit, RecPreWrite, RecWrite, RecAck:
		if len(payload) < dataFixedSize {
			return r, 0, fmt.Errorf("%w: data payload %d bytes, want >= %d", ErrCorrupt, len(payload), dataFixedSize)
		}
		r.Flags = payload[2]
		r.Object = wire.ObjectID(binary.LittleEndian.Uint32(payload[3:]))
		r.Tag.TS = binary.LittleEndian.Uint64(payload[7:])
		r.Tag.ID = binary.LittleEndian.Uint32(payload[15:])
		r.Origin = wire.ProcessID(binary.LittleEndian.Uint32(payload[19:]))
		r.Client = wire.ProcessID(binary.LittleEndian.Uint32(payload[23:]))
		r.ReqID = binary.LittleEndian.Uint64(payload[27:])
		vlen := binary.LittleEndian.Uint32(payload[35:])
		if int(vlen) != len(payload)-dataFixedSize {
			return r, 0, fmt.Errorf("%w: value length %d in a %d-byte payload", ErrCorrupt, vlen, len(payload))
		}
		if vlen > 0 {
			r.Value = append([]byte(nil), payload[dataFixedSize:]...)
		}
	default:
		return r, 0, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, payload[1])
	}
	return r, frameHeaderSize + int(n), nil
}

// leafHash is the audit leaf for one framed record: SHA-256 over the
// record payload (framing excluded, so a re-framed copy verifies).
func leafHash(payload []byte) [32]byte {
	return sha256.Sum256(payload)
}

// merkleFold reduces leaf hashes to their Merkle root, folding in
// place (the caller's slice is scratch). An odd node is promoted
// unpaired. Zero leaves fold to the zero root; callers never write a
// root record for an empty batch.
func merkleFold(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	var pair [64]byte
	for len(leaves) > 1 {
		half := (len(leaves) + 1) / 2
		for i := 0; i < half; i++ {
			if 2*i+1 < len(leaves) {
				copy(pair[:32], leaves[2*i][:])
				copy(pair[32:], leaves[2*i+1][:])
				leaves[i] = sha256.Sum256(pair[:])
			} else {
				leaves[i] = leaves[2*i]
			}
		}
		leaves = leaves[:half]
	}
	return leaves[0]
}

package wal

import (
	"bytes"
	"testing"

	"repro/internal/tag"
	"repro/internal/wire"
)

// FuzzDecodeWALRecord fuzzes the record codec: decoding arbitrary
// bytes must never panic, and whatever decodes successfully must
// re-encode to the identical frame (the codec is canonical — this is
// what lets Verify recompute audit leaves from re-framed records).
func FuzzDecodeWALRecord(f *testing.F) {
	seeds := testRecords()
	seeds = append(seeds,
		Record{Type: RecRoot, Count: 8, Prev: [32]byte{0xaa}, Root: [32]byte{0xbb}},
		Record{Type: RecWrite, Object: wire.ObjectID(^uint32(0) >> 1), Tag: tag.Tag{TS: ^uint64(0), ID: ^uint32(0)}, Origin: 1, Flags: 0xff, Value: bytes.Repeat([]byte{0x7f}, 300)},
	)
	for i := range seeds {
		f.Add(appendRecord(nil, &seeds[i]))
	}
	// Damaged variants: truncated, flipped version, flipped type byte.
	enc := appendRecord(nil, &seeds[0])
	f.Add(enc[:len(enc)-1])
	bad := append([]byte(nil), enc...)
	bad[frameHeaderSize] ^= 0xff
	f.Add(bad)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := decodeRecord(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		re := appendRecord(nil, &rec)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode not canonical:\n in  %x\n out %x", b[:n], re)
		}
	})
}

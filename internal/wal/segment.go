package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout: one MANIFEST per log directory pinning the format
// version and lane count, plus per-lane segment files named
// wal-<lane>-<segment>.log. Lane count is fixed at first open — a WAL
// directory belongs to one server with one lane configuration.
const (
	segMagic      = 0x4757414c // "LAWG" little-endian on disk
	segVersion    = 1
	segHeaderSize = 16 // magic u32, version u16, lane u16, segment u32, reserved u32

	manifestName  = "MANIFEST"
	manifestMagic = 0x4d57414c // "LAWM"
	manifestSize  = 8          // magic u32, version u16, lanes u16
)

func segName(lane int, seg uint32) string {
	return fmt.Sprintf("wal-%03d-%08d.log", lane, seg)
}

func segPath(dir string, lane int, seg uint32) string {
	return filepath.Join(dir, segName(lane, seg))
}

// listSegments returns the lane's segment indices, oldest first.
func listSegments(dir string, lane int) ([]uint32, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := fmt.Sprintf("wal-%03d-", lane)
	var segs []uint32
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".log") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".log")
		v, err := strconv.ParseUint(num, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("wal: unparseable segment file %s", name)
		}
		segs = append(segs, uint32(v))
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// createSegment creates a fresh segment file with its header written
// and synced, and the directory entry synced so the file survives a
// crash that immediately follows (records acked against this segment
// must not lose the segment itself).
func createSegment(dir string, lane int, seg uint32) (*os.File, error) {
	f, err := os.OpenFile(segPath(dir, lane, seg), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:], segVersion)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(lane))
	binary.LittleEndian.PutUint32(hdr[8:], seg)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// checkSegHeader validates a segment file's 16-byte header against the
// lane and index its name promised.
func checkSegHeader(hdr []byte, lane int, seg uint32) error {
	if len(hdr) < segHeaderSize {
		return fmt.Errorf("wal: segment header truncated (%d bytes)", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr) != segMagic {
		return fmt.Errorf("wal: bad segment magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != segVersion {
		return fmt.Errorf("wal: unsupported segment version %d", v)
	}
	if l := binary.LittleEndian.Uint16(hdr[6:]); int(l) != lane {
		return fmt.Errorf("wal: segment header lane %d, file named for lane %d", l, lane)
	}
	if s := binary.LittleEndian.Uint32(hdr[8:]); s != seg {
		return fmt.Errorf("wal: segment header index %d, file named %d", s, seg)
	}
	return nil
}

// loadManifest reads or creates the directory manifest, erroring when
// an existing one disagrees on the lane count: the lane fanout decides
// which file each record lives in, so it is fixed at first open.
func loadManifest(dir string, lanes int) error {
	path := filepath.Join(dir, manifestName)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		var m [manifestSize]byte
		binary.LittleEndian.PutUint32(m[0:], manifestMagic)
		binary.LittleEndian.PutUint16(m[4:], 1)
		binary.LittleEndian.PutUint16(m[6:], uint16(lanes))
		if err := os.WriteFile(path, m[:], 0o644); err != nil {
			return err
		}
		return syncDir(dir)
	}
	if err != nil {
		return err
	}
	if len(b) != manifestSize || binary.LittleEndian.Uint32(b) != manifestMagic {
		return fmt.Errorf("wal: %s is not a WAL manifest", path)
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != 1 {
		return fmt.Errorf("wal: unsupported manifest version %d", v)
	}
	if l := int(binary.LittleEndian.Uint16(b[6:])); l != lanes {
		return fmt.Errorf("wal: directory was created with %d lanes, server configured for %d (lane count is fixed per WAL directory)", l, lanes)
	}
	return nil
}

// manifestLanes reads the lane count of an existing manifest (offline
// verification does not know the server configuration).
func manifestLanes(dir string) (int, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, err
	}
	if len(b) != manifestSize || binary.LittleEndian.Uint32(b) != manifestMagic {
		return 0, fmt.Errorf("wal: %s does not hold a WAL manifest", dir)
	}
	return int(binary.LittleEndian.Uint16(b[6:])), nil
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/tag"
)

func testRecords() []Record {
	return []Record{
		{Type: RecInit, Object: 7, Tag: tag.Tag{TS: 1, ID: 2}, Origin: 2, Client: 100001, ReqID: 1, Flags: FlagHasValue, Value: []byte("hello")},
		{Type: RecPreWrite, Object: 7, Tag: tag.Tag{TS: 2, ID: 3}, Origin: 3, Flags: FlagHasValue, Value: []byte("world-longer-value")},
		{Type: RecWrite, Object: 7, Tag: tag.Tag{TS: 1, ID: 2}, Origin: 2},
		{Type: RecAck, Object: 7, Tag: tag.Tag{TS: 1, ID: 2}, Origin: 2, Client: 100001, ReqID: 1},
		{Type: RecInit, Object: 9, Tag: tag.Tag{TS: 5, ID: 1}, Origin: 1, Client: 100002, ReqID: 42, Flags: FlagHasValue | FlagPhaseWrite, Value: []byte{}},
	}
}

func recordsEqual(a, b Record) bool {
	return a.Type == b.Type && a.Object == b.Object && a.Tag == b.Tag &&
		a.Origin == b.Origin && a.Client == b.Client && a.ReqID == b.ReqID &&
		a.Flags == b.Flags && bytes.Equal(a.Value, b.Value) &&
		a.Count == b.Count && a.Prev == b.Prev && a.Root == b.Root
}

func TestRecordRoundTrip(t *testing.T) {
	recs := testRecords()
	recs = append(recs, Record{Type: RecRoot, Count: 3, Prev: [32]byte{1}, Root: [32]byte{2}})
	var buf []byte
	for i := range recs {
		buf = appendRecord(buf, &recs[i])
	}
	off := 0
	for i := range recs {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		want := recs[i]
		want.Value = nil
		if len(recs[i].Value) > 0 {
			want.Value = recs[i].Value
		}
		if !recordsEqual(got, want) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

type replayed struct {
	lane int
	rec  Record
}

func collect(dst *[]replayed) ReplayFn {
	return func(lane int, r *Record) error {
		*dst = append(*dst, replayed{lane, *r})
		return nil
	}
}

func TestOpenAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Lanes: 2}
	l, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for i := range recs {
		lane := i % 2
		if seq := l.Append(lane, &recs[i]); seq == 0 {
			t.Fatal("Append returned sequence 0")
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []replayed
	l2, err := Open(cfg, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Replayed != uint64(len(recs)) || st.TornTails != 0 {
		t.Fatalf("replayed %d records, %d torn tails; want %d, 0", st.Replayed, st.TornTails, len(recs))
	}
	perLane := map[int][]Record{}
	for _, g := range got {
		perLane[g.lane] = append(perLane[g.lane], g.rec)
	}
	for i := range recs {
		lane := i % 2
		want := recs[i]
		if len(want.Value) == 0 {
			want.Value = nil
		}
		g := perLane[lane][0]
		perLane[lane] = perLane[lane][1:]
		if !recordsEqual(g, want) {
			t.Fatalf("lane %d record: got %+v want %+v", lane, g, want)
		}
	}
}

func TestManifestLaneMismatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Lanes: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Open(Config{Dir: dir, Lanes: 4}, nil); err == nil {
		t.Fatal("reopening with a different lane count should fail")
	}
}

// seedSegment builds a pristine single-lane log with the test records
// and returns the manifest bytes, segment bytes, and each record's
// frame offset within the segment file.
func seedSegment(t *testing.T) (manifest, segment []byte, offsets []int) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Lanes: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for i := range recs {
		l.Append(0, &recs[i])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	manifest, err = os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	segment, err = os.ReadFile(segPath(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	off := segHeaderSize
	for off < len(segment) {
		_, n, err := decodeRecord(segment[off:])
		if err != nil {
			t.Fatalf("pristine segment undecodable at %d: %v", off, err)
		}
		offsets = append(offsets, off)
		off += n
	}
	return manifest, segment, offsets
}

func restoreDir(t *testing.T, manifest, segment []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), manifest, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, 0, 0), segment, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestTornTailEveryOffset truncates the segment at every byte offset
// inside the last record, and separately corrupts every byte of it:
// replay must always recover exactly the preceding records, count one
// torn tail, and leave the log appendable.
func TestTornTailEveryOffset(t *testing.T) {
	manifest, segment, offsets := seedSegment(t)
	recs := testRecords()
	lastStart := offsets[len(offsets)-1]
	wantPrefix := len(offsets) - 1

	check := func(t *testing.T, dir string, wantTorn uint64) {
		var got []replayed
		cfg := Config{Dir: dir, Lanes: 1}
		l, err := Open(cfg, collect(&got))
		if err != nil {
			t.Fatalf("open after damage: %v", err)
		}
		st := l.Stats()
		if st.TornTails != wantTorn {
			t.Fatalf("torn tails = %d, want %d", st.TornTails, wantTorn)
		}
		if len(got) != wantPrefix {
			t.Fatalf("replayed %d records, want the %d-record prefix", len(got), wantPrefix)
		}
		for i, g := range got {
			want := recs[i]
			if len(want.Value) == 0 {
				want.Value = nil
			}
			if !recordsEqual(g.rec, want) {
				t.Fatalf("record %d diverged after repair: got %+v want %+v", i, g.rec, want)
			}
		}
		// The repaired log must accept and persist new appends.
		extra := Record{Type: RecWrite, Object: 1, Tag: tag.Tag{TS: 9, ID: 1}, Origin: 1, Flags: FlagHasValue, Value: []byte("post-repair")}
		l.Append(0, &extra)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		var again []replayed
		l2, err := Open(cfg, collect(&again))
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if len(again) != wantPrefix+1 || !recordsEqual(again[len(again)-1].rec, extra) {
			t.Fatalf("after repair+append: replayed %d records, want %d ending in the new append", len(again), wantPrefix+1)
		}
	}

	for cut := lastStart; cut < len(segment); cut++ {
		t.Run(fmt.Sprintf("truncate@%d", cut), func(t *testing.T) {
			dir := restoreDir(t, manifest, segment[:cut])
			var wantTorn uint64 = 1
			if cut == lastStart {
				wantTorn = 0 // a clean cut at a record boundary is not torn
			}
			check(t, dir, wantTorn)
		})
	}
	for off := lastStart; off < len(segment); off++ {
		t.Run(fmt.Sprintf("corrupt@%d", off), func(t *testing.T) {
			mut := append([]byte(nil), segment...)
			mut[off] ^= 0x5a
			dir := restoreDir(t, manifest, mut)
			check(t, dir, 1)
		})
	}
}

func TestCorruptionInSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Lanes: 1, SegmentBytes: 1} // rotate on every flush
	l, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for i := range recs {
		l.Append(0, &recs[i])
		l.flushLane(0, true) // one flush per record -> one rotation each
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a record in an early sealed segment (with SegmentBytes 1
	// every batch rotates first, so segment 0 holds only its header and
	// the first record lives in segment 1).
	path := segPath(dir, 0, 1)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) <= segHeaderSize+frameHeaderSize {
		t.Fatalf("setup: segment 1 holds no record (%d bytes)", len(b))
	}
	b[segHeaderSize+frameHeaderSize] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg, nil); err == nil {
		t.Fatal("corruption in a sealed segment must fail the open")
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Lanes: 1, SegmentBytes: 256}
	l, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Type: RecWrite, Object: 3, Origin: 1, Flags: FlagHasValue, Value: bytes.Repeat([]byte("v"), 64)}
	for i := 0; i < 50; i++ {
		rec.Tag = tag.Tag{TS: uint64(i + 1), ID: 1}
		l.Append(0, &rec)
		if i%5 == 4 {
			l.flushLane(0, true)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatal("expected segment rotations")
	}
	segs, err := listSegments(dir, 0)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d (err %v)", len(segs), err)
	}

	// Reopen, compact to a single snapshot record, and confirm the
	// old segments are gone and replay sees only the snapshot.
	var count int
	l2, err := Open(cfg, func(lane int, r *Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("replayed %d records, want 50", count)
	}
	snap := Record{Type: RecWrite, Object: 3, Tag: tag.Tag{TS: 50, ID: 1}, Origin: 1, Flags: FlagHasValue, Value: bytes.Repeat([]byte("v"), 64)}
	if err := l2.Compact(0, func(add func(*Record)) { add(&snap) }); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(dir, 0)
	if err != nil || len(segs) != 1 {
		t.Fatalf("after compaction want 1 segment, got %v (err %v)", segs, err)
	}
	var got []replayed
	l3, err := Open(cfg, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(got) != 1 || !recordsEqual(got[0].rec, snap) {
		t.Fatalf("replay after compaction: got %d records, want just the snapshot", len(got))
	}
}

func TestWaitLaneTrainGate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Lanes: 1, Sync: SyncTrain}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Start()
	rec := Record{Type: RecInit, Object: 1, Tag: tag.Tag{TS: 1, ID: 1}, Origin: 1, Flags: FlagHasValue, Value: []byte("x")}
	seq := l.Append(0, &rec)
	if err := l.WaitLane(0, seq, nil); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Syncs == 0 {
		t.Fatal("WaitLane returned without a covering sync")
	}
	if st.Appends != 1 || st.Batches == 0 {
		t.Fatalf("stats after one gated append: %+v", st)
	}
	// An abort channel firing must unblock a waiter for an unsynced seq.
	abort := make(chan struct{})
	close(abort)
	if err := l.WaitLane(0, seq+100, abort); err != ErrAborted {
		t.Fatalf("aborted wait returned %v, want ErrAborted", err)
	}
}

// TestKillDropsStagedRecords is the crash simulation: records staged
// but never covered by a sync must not survive, even on a filesystem
// that would have kept buffered writes.
func TestKillDropsStagedRecords(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Lanes: 1, Sync: SyncTrain}
	l, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): nothing can flush the staged records.
	synced := Record{Type: RecInit, Object: 1, Tag: tag.Tag{TS: 1, ID: 1}, Origin: 1, Flags: FlagHasValue, Value: []byte("durable")}
	seq := l.Append(0, &synced)
	l.flushLane(0, true)
	if l.Stats().Syncs != 1 {
		t.Fatal("setup: first record should be synced")
	}
	staged := Record{Type: RecInit, Object: 1, Tag: tag.Tag{TS: 2, ID: 1}, Origin: 1, Flags: FlagHasValue, Value: []byte("lost")}
	if s2 := l.Append(0, &staged); s2 != seq+1 {
		t.Fatalf("unexpected sequence %d", s2)
	}
	l.Kill()

	var got []replayed
	l2, err := Open(cfg, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 1 || !bytes.Equal(got[0].rec.Value, []byte("durable")) {
		t.Fatalf("after kill: replayed %d records (%v), want only the synced one", len(got), got)
	}
	if l2.Stats().TornTails != 0 {
		t.Fatal("a kill between syncs must not leave a torn tail (staged records never touch the file)")
	}
}

func TestVerifyAuditChain(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Lanes: 2, Sync: SyncTrain, MerkleRoots: true}
	l, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for round := 0; round < 3; round++ {
		for i := range recs {
			l.Append(i%2, &recs[i])
		}
		l.flushLane(0, true)
		l.flushLane(1, true)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(dir)
	if err != nil {
		t.Fatalf("verify clean log: %v", err)
	}
	if res.Lanes != 2 || res.Records != uint64(3*len(recs)) || res.Roots == 0 || res.Unrooted != 0 || res.TornTail {
		t.Fatalf("unexpected verify result: %+v", res)
	}

	// Root chaining must survive a reopen (the chain continues from
	// the replayed prevRoot rather than restarting at zero).
	l2, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(0, &recs[0])
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("verify after reopen append: %v", err)
	}

	// Tampering with a committed value must break verification even
	// though the CRC is fixed up to match.
	path := segPath(dir, 0, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for off := segHeaderSize; off < len(b); {
		rec, n, err := decodeRecord(b[off:])
		if err != nil {
			t.Fatal(err)
		}
		if !tampered && rec.Type != RecRoot && len(rec.Value) > 0 {
			rec.Value[0] ^= 0xff
			fixed := appendRecord(nil, &rec)
			copy(b[off:], fixed)
			tampered = true
		}
		off += n
	}
	if !tampered {
		t.Fatal("setup: no value record to tamper with")
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("verify must detect a CRC-consistent value tamper via the Merkle chain")
	}
}

func TestIntervalModeSyncsWithoutWaiters(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Lanes: 1, Sync: SyncInterval, FlushInterval: time.Millisecond}
	l, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	rec := Record{Type: RecWrite, Object: 1, Tag: tag.Tag{TS: 1, ID: 1}, Origin: 1, Flags: FlagHasValue, Value: []byte("v")}
	l.Append(0, &rec)
	deadline := time.After(2 * time.Second)
	for l.Stats().Syncs == 0 {
		select {
		case <-deadline:
			t.Fatal("interval mode never synced the staged record")
		case <-time.After(time.Millisecond):
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	// Interval mode with an hour-long period: the syncer never runs
	// during the measurement, so this isolates the staging path the
	// lane goroutines execute (the 0 allocs/op hot-path gate).
	l, err := Open(Config{Dir: dir, Lanes: 1, Sync: SyncInterval, FlushInterval: time.Hour, BatchBytes: 1 << 30}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Kill()
	val := bytes.Repeat([]byte("v"), 128)
	rec := Record{Type: RecWrite, Object: 1, Origin: 1, Flags: FlagHasValue, Value: val}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Tag = tag.Tag{TS: uint64(i + 1), ID: 1}
		l.Append(0, &rec)
		if i%8192 == 8191 {
			l.flushLane(0, false) // bound staging growth; amortizes to ~0 allocs/op
		}
	}
}

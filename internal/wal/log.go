package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SyncMode selects when staged records reach stable storage.
type SyncMode uint8

const (
	// SyncTrain (the default) gates every outgoing ring frame on a
	// sync covering the records its envelopes staged: one fdatasync
	// per frame train, shared across lanes that staged during the same
	// pass. Acknowledged writes are durable at every server.
	SyncTrain SyncMode = iota
	// SyncInterval syncs on a timer (FlushInterval, default 2ms) and
	// never gates the ring: bounded-loss durability.
	SyncInterval
	// SyncNone writes segments without ever syncing: crash durability
	// is whatever the OS page cache survives. Useful as the
	// group-commit ablation baseline.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncTrain:
		return "train"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncMode(%d)", uint8(m))
	}
}

// ParseSyncMode parses the -wal-sync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "train":
		return SyncTrain, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (want train, interval, or none)", s)
	}
}

// Config configures one server's log. The zero value of every field
// but Dir and Lanes is usable.
type Config struct {
	// Dir is the log directory; empty disables the WAL entirely at the
	// layers above this package.
	Dir string
	// Lanes is the lane fanout, one segment sequence per lane. Fixed
	// at first open (recorded in the MANIFEST).
	Lanes int
	// Sync is the durability policy; see the SyncMode constants.
	Sync SyncMode
	// BatchBytes kicks a sync pass early once a lane has staged this
	// much (the group-commit accumulator, mirroring the transport's
	// MaxBatchBytes). Default 256 KiB.
	BatchBytes int
	// FlushInterval is the group-commit linger in SyncTrain mode (how
	// long a kicked sync pass waits for concurrent lanes to stage
	// more; default 0) and the sync period in SyncInterval mode
	// (default 2ms) — mirroring the transport's FlushInterval.
	FlushInterval time.Duration
	// SegmentBytes rotates a lane to a fresh segment once the current
	// one exceeds this size. Default 64 MiB.
	SegmentBytes int64
	// KeepSegments retains that many compacted-away segments per lane
	// after an open-time compaction. Default 0 (delete all history the
	// snapshot replaced).
	KeepSegments int
	// MerkleRoots appends a chained batch-root record per sync, making
	// the log tamper-evident (verify offline with Verify).
	MerkleRoots bool
}

const (
	defaultBatchBytes   = 256 << 10
	defaultSegmentBytes = 64 << 20
	defaultSyncInterval = 2 * time.Millisecond
	// housekeepEvery flushes lanes that stopped sending (and, in
	// SyncNone mode, is the only writer).
	housekeepEvery = 100 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.BatchBytes <= 0 {
		c.BatchBytes = defaultBatchBytes
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = defaultSegmentBytes
	}
	if c.FlushInterval <= 0 && c.Sync == SyncInterval {
		c.FlushInterval = defaultSyncInterval
	}
	if c.KeepSegments < 0 {
		c.KeepSegments = 0
	}
	return c
}

// Wait/lifecycle errors.
var (
	ErrClosed  = errors.New("wal: log closed")
	ErrAborted = errors.New("wal: wait aborted")
)

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Appends     uint64 // records staged
	AppendBytes uint64 // framed bytes staged
	Batches     uint64 // non-empty lane flushes
	Syncs       uint64 // fdatasyncs that covered staged records
	SyncBytes   uint64 // bytes written by those flushes
	Rotations   uint64 // segment rotations
	Roots       uint64 // audit root records written
	Replayed    uint64 // data records replayed at open
	TornTails   uint64 // tails truncated at open (bad CRC / short record)
	Failed      bool   // a disk error stopped the log
}

// laneLog is one lane's staging buffer and open segment. Appends land
// in buf under mu; the syncer swaps buf out, writes and syncs outside
// the lock (appends continue into the spare), then publishes the new
// synced watermark. The file and segment bookkeeping are touched only
// by the syncer (or pre-Start, single-threaded).
type laneLog struct {
	mu     sync.Mutex
	buf    []byte
	spare  []byte
	leaves [][32]byte
	spareL [][32]byte
	staged uint64 // records staged, monotonic; the Append/WaitLane seq
	synced uint64 // records covered by the last successful flush
	waitc  chan struct{}

	lane     int
	f        *os.File
	seg      uint32
	segBytes int64
	segs     []uint32 // live segment indices, oldest first
	prevRoot [32]byte // audit chain link, syncer-confined
}

// Log is one server's write-ahead log. Append and WaitLane are safe
// for concurrent use; Open/Compact/Start/Close follow the lifecycle
// Open → (Compact per lane) → Start → Close|Kill.
type Log struct {
	cfg   Config
	lanes []laneLog

	reqc    chan struct{} // sync kick, capacity 1 (kicks coalesce)
	stopc   chan struct{}
	done    chan struct{}
	started atomic.Bool
	once    sync.Once

	failMu  sync.Mutex
	failErr error

	appends, appendBytes atomic.Uint64
	batches, syncs       atomic.Uint64
	syncBytes            atomic.Uint64
	rotations, roots     atomic.Uint64
	replayed, tornTails  atomic.Uint64
	closeErr             error
}

// ReplayFn receives every data record of one lane in append order.
// The Record (and its Value) is owned by the callee.
type ReplayFn func(lane int, r *Record) error

// Open opens (or creates) the log directory and replays every lane
// before returning, delivering data records to replay (which may be
// nil to scan without delivering — torn tails are still repaired).
// Replay happens here, before the caller wires the log into a running
// server, which is what guarantees recovery replays before any ring
// adoption traffic. Corruption anywhere but the newest record of the
// newest segment of a lane is an error; a torn or corrupt tail is
// truncated away and counted in Stats.TornTails.
func Open(cfg Config, replay ReplayFn) (*Log, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("wal: Config.Dir required")
	}
	if cfg.Lanes <= 0 {
		return nil, errors.New("wal: Config.Lanes must be positive")
	}
	if cfg.Lanes > 1<<16-1 {
		return nil, fmt.Errorf("wal: %d lanes exceed the format limit", cfg.Lanes)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := loadManifest(cfg.Dir, cfg.Lanes); err != nil {
		return nil, err
	}
	l := &Log{
		cfg:   cfg,
		lanes: make([]laneLog, cfg.Lanes),
		reqc:  make(chan struct{}, 1),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := range l.lanes {
		ll := &l.lanes[i]
		ll.lane = i
		ll.waitc = make(chan struct{})
		if err := l.openLane(ll, replay); err != nil {
			l.closeFiles()
			return nil, fmt.Errorf("wal: lane %d: %w", i, err)
		}
	}
	return l, nil
}

// openLane replays one lane's segments and leaves the newest open for
// appending, repaired of any torn tail.
func (l *Log) openLane(ll *laneLog, replay ReplayFn) error {
	segs, err := listSegments(l.cfg.Dir, ll.lane)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		f, err := createSegment(l.cfg.Dir, ll.lane, 0)
		if err != nil {
			return err
		}
		ll.f, ll.seg, ll.segBytes, ll.segs = f, 0, segHeaderSize, []uint32{0}
		return nil
	}
	ll.segs = segs
	for i, seg := range segs {
		last := i == len(segs)-1
		end, err := l.replaySegment(ll, seg, last, replay)
		if err != nil {
			return err
		}
		if last {
			path := segPath(l.cfg.Dir, ll.lane, seg)
			info, err := os.Stat(path)
			if err != nil {
				return err
			}
			if info.Size() > end {
				if err := os.Truncate(path, end); err != nil {
					return err
				}
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return err
			}
			if err := f.Sync(); err != nil { // make the repair durable
				f.Close()
				return err
			}
			ll.f, ll.seg, ll.segBytes = f, seg, end
		}
	}
	return nil
}

// replaySegment scans one segment, delivering data records, tracking
// the audit chain, and returning the offset of the first byte past the
// last intact record. Damage is repaired (and counted) only in the
// lane's newest segment; elsewhere it is corruption.
func (l *Log) replaySegment(ll *laneLog, seg uint32, last bool, replay ReplayFn) (int64, error) {
	path := segPath(l.cfg.Dir, ll.lane, seg)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if err := checkSegHeader(data, ll.lane, seg); err != nil {
		if !last {
			return 0, fmt.Errorf("segment %d: %w", seg, err)
		}
		// The newest segment can legitimately die mid-creation; any
		// record it might have held was never covered by a sync.
		l.tornTails.Add(1)
		if err := os.Remove(path); err != nil {
			return 0, err
		}
		f, err := createSegment(l.cfg.Dir, ll.lane, seg)
		if err != nil {
			return 0, err
		}
		f.Close()
		return segHeaderSize, nil
	}
	off := int64(segHeaderSize)
	for int(off) < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if !last {
				return 0, fmt.Errorf("segment %d offset %d: %w", seg, off, err)
			}
			l.tornTails.Add(1)
			return off, nil
		}
		off += int64(n)
		if rec.Type == RecRoot {
			ll.prevRoot = rec.Root
			continue
		}
		l.replayed.Add(1)
		if replay != nil {
			if err := replay(ll.lane, &rec); err != nil {
				return 0, err
			}
		}
	}
	return off, nil
}

// Start launches the group-commit syncer. Call after any Compact.
func (l *Log) Start() {
	l.started.Store(true)
	go l.syncLoop()
}

// Append stages one record on a lane and returns its sequence number
// for WaitLane. The record's bytes (value included) are copied into
// the lane's staging buffer immediately: the caller's buffers — pooled
// or not — are never referenced after Append returns, and nothing
// reaches the OS until a sync pass writes the batch. Amortized zero
// allocations.
func (l *Log) Append(lane int, r *Record) uint64 {
	ll := &l.lanes[lane]
	ll.mu.Lock()
	start := len(ll.buf)
	ll.buf = appendRecord(ll.buf, r)
	if l.cfg.MerkleRoots {
		ll.leaves = append(ll.leaves, leafHash(ll.buf[start+frameHeaderSize:]))
	}
	ll.staged++
	seq := ll.staged
	size := len(ll.buf)
	ll.mu.Unlock()
	l.appends.Add(1)
	l.appendBytes.Add(uint64(size - start))
	if size >= l.cfg.BatchBytes {
		l.kick()
	}
	return seq
}

// WaitLane blocks until a sync covers the lane's records up to seq (as
// returned by Append), kicking the group-commit pass. It returns
// ErrAborted when abort fires, ErrClosed when the log stops, or the
// disk error that failed the log. In SyncTrain mode this is the send
// gate: a ring frame leaves only after WaitLane returns nil for the
// highest sequence its envelopes staged.
func (l *Log) WaitLane(lane int, seq uint64, abort <-chan struct{}) error {
	ll := &l.lanes[lane]
	for {
		ll.mu.Lock()
		if ll.synced >= seq {
			ll.mu.Unlock()
			return nil
		}
		if err := l.failed(); err != nil {
			ll.mu.Unlock()
			return err
		}
		w := ll.waitc
		ll.mu.Unlock()
		l.kick()
		select {
		case <-w:
		case <-abort:
			return ErrAborted
		case <-l.stopc:
			return ErrClosed
		}
	}
}

// kick requests a sync pass; extra kicks coalesce.
func (l *Log) kick() {
	select {
	case l.reqc <- struct{}{}:
	default:
	}
}

func (l *Log) tickEvery() time.Duration {
	if l.cfg.Sync == SyncInterval {
		return l.cfg.FlushInterval
	}
	return housekeepEvery
}

// syncLoop is the group-commit engine: one goroutine serving every
// lane, so trains staged by concurrent lanes during the same pass (or
// the same linger window) share it.
func (l *Log) syncLoop() {
	defer close(l.done)
	tick := time.NewTicker(l.tickEvery())
	defer tick.Stop()
	linger := l.cfg.Sync == SyncTrain && l.cfg.FlushInterval > 0
	for {
		select {
		case <-l.reqc:
			if linger {
				t := time.NewTimer(l.cfg.FlushInterval)
				select {
				case <-t.C:
				case <-l.stopc:
					t.Stop()
					return
				}
			}
			l.syncPass()
		case <-tick.C:
			l.syncPass()
		case <-l.stopc:
			return
		}
	}
}

// syncPass flushes every dirty lane once (and syncs, by mode).
func (l *Log) syncPass() {
	for i := range l.lanes {
		l.flushLane(i, l.cfg.Sync != SyncNone)
	}
}

// flushLane swaps out the lane's staging buffer, writes it (appending
// the audit root when enabled), optionally syncs, and publishes the
// new watermark. On a disk error the log fails permanently; waiters
// are woken and receive the error instead of a watermark they would
// wait on forever.
func (l *Log) flushLane(lane int, doSync bool) {
	ll := &l.lanes[lane]
	if l.failed() != nil {
		l.wake(ll)
		return
	}
	ll.mu.Lock()
	if len(ll.buf) == 0 {
		ll.mu.Unlock()
		return
	}
	buf, leaves, target := ll.buf, ll.leaves, ll.staged
	ll.buf = ll.spare[:0]
	ll.leaves = ll.spareL[:0]
	ll.mu.Unlock()

	if l.cfg.MerkleRoots && len(leaves) > 0 {
		count := uint32(len(leaves))
		root := merkleFold(leaves)
		buf = appendRecord(buf, &Record{Type: RecRoot, Count: count, Prev: ll.prevRoot, Root: root})
		ll.prevRoot = root
		l.roots.Add(1)
	}

	err := l.writeLane(ll, buf)
	if err == nil && doSync {
		err = ll.f.Sync()
	}
	if err != nil {
		l.setFailed(err)
	}

	ll.mu.Lock()
	if err == nil {
		ll.synced = target
	}
	ll.spare = buf[:0]
	ll.spareL = leaves[:0]
	close(ll.waitc)
	ll.waitc = make(chan struct{})
	ll.mu.Unlock()
	if err == nil {
		l.batches.Add(1)
		if doSync {
			l.syncs.Add(1)
			l.syncBytes.Add(uint64(len(buf)))
		}
	}
}

// writeLane appends a batch to the lane's segment, rotating first when
// the segment is full.
func (l *Log) writeLane(ll *laneLog, b []byte) error {
	if ll.segBytes >= l.cfg.SegmentBytes {
		if err := l.rotateLane(ll); err != nil {
			return err
		}
	}
	n, err := ll.f.Write(b)
	ll.segBytes += int64(n)
	return err
}

// rotateLane seals the current segment (synced, so sealed segments are
// immutable-on-disk) and opens the next.
func (l *Log) rotateLane(ll *laneLog) error {
	if err := ll.f.Sync(); err != nil {
		return err
	}
	if err := ll.f.Close(); err != nil {
		return err
	}
	ll.seg++
	f, err := createSegment(l.cfg.Dir, ll.lane, ll.seg)
	if err != nil {
		return err
	}
	ll.f = f
	ll.segBytes = segHeaderSize
	ll.segs = append(ll.segs, ll.seg)
	l.rotations.Add(1)
	return nil
}

func (l *Log) wake(ll *laneLog) {
	ll.mu.Lock()
	close(ll.waitc)
	ll.waitc = make(chan struct{})
	ll.mu.Unlock()
}

// Compact rewrites one lane as a snapshot: rotate to a fresh segment,
// let the caller re-log the lane's live state through add, sync it,
// then delete the segments the snapshot replaced (keeping
// KeepSegments of history). Call between Open and Start. Crash-safe:
// old segments are deleted only after the snapshot is on disk, and the
// replay fold is idempotent, so a crash mid-compaction replays history
// plus a partial snapshot.
func (l *Log) Compact(lane int, emit func(add func(*Record))) error {
	ll := &l.lanes[lane]
	if ll.segBytes == segHeaderSize && len(ll.segs) == 1 {
		return nil // nothing logged, nothing to compact
	}
	if err := l.rotateLane(ll); err != nil {
		return err
	}
	old := append([]uint32(nil), ll.segs[:len(ll.segs)-1]...)
	emit(func(r *Record) { l.Append(lane, r) })
	l.flushLane(lane, true)
	if err := l.failed(); err != nil {
		return err
	}
	drop := len(old) - l.cfg.KeepSegments
	for i := 0; i < drop; i++ {
		if err := os.Remove(segPath(l.cfg.Dir, ll.lane, old[i])); err != nil {
			return err
		}
	}
	if drop > 0 {
		if err := syncDir(l.cfg.Dir); err != nil {
			return err
		}
	} else {
		drop = 0
	}
	// Live list: kept history plus the snapshot segment.
	ll.segs = append(ll.segs[:0], old[drop:]...)
	ll.segs = append(ll.segs, ll.seg)
	return nil
}

func (l *Log) failed() error {
	l.failMu.Lock()
	defer l.failMu.Unlock()
	return l.failErr
}

func (l *Log) setFailed(err error) {
	l.failMu.Lock()
	if l.failErr == nil {
		l.failErr = err
	}
	l.failMu.Unlock()
}

// Close stops the syncer, flushes every lane, and syncs — a graceful
// stop never relies on torn-tail repair, whatever the sync mode.
func (l *Log) Close() error {
	l.once.Do(func() { l.closeErr = l.shutdown(false) })
	return l.closeErr
}

// Kill stops the log abruptly, dropping staged-but-unsynced records on
// the floor — the process-crash simulation. Records the OS already
// holds (written but unsynced, as SyncInterval/SyncNone do between
// syncs) survive, as they may on a real crash.
func (l *Log) Kill() {
	l.once.Do(func() { l.closeErr = l.shutdown(true) })
}

func (l *Log) shutdown(abrupt bool) error {
	close(l.stopc)
	if l.started.Load() {
		<-l.done
	}
	var first error
	for i := range l.lanes {
		ll := &l.lanes[i]
		if !abrupt {
			l.flushLane(i, true)
			if ll.f != nil {
				if err := ll.f.Sync(); err != nil && first == nil {
					first = err
				}
			}
		}
		if ll.f != nil {
			if err := ll.f.Close(); err != nil && first == nil {
				first = err
			}
			ll.f = nil
		}
	}
	if err := l.failed(); err != nil && first == nil {
		first = err
	}
	return first
}

// closeFiles releases any lane files opened by a failed Open.
func (l *Log) closeFiles() {
	for i := range l.lanes {
		if f := l.lanes[i].f; f != nil {
			f.Close()
			l.lanes[i].f = nil
		}
	}
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:     l.appends.Load(),
		AppendBytes: l.appendBytes.Load(),
		Batches:     l.batches.Load(),
		Syncs:       l.syncs.Load(),
		SyncBytes:   l.syncBytes.Load(),
		Rotations:   l.rotations.Load(),
		Roots:       l.roots.Load(),
		Replayed:    l.replayed.Load(),
		TornTails:   l.tornTails.Load(),
		Failed:      l.failed() != nil,
	}
}

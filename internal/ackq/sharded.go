package ackq

import (
	"sync"
	"sync/atomic"
)

// Sharded is the per-destination ack sender: every key (a client process
// id) gets its own FIFO lane with its own lazily created drain
// goroutine, so one slow or dead destination delays only its own acks —
// the single shared drain goroutine it replaces serialized every
// client's Sends behind the slowest one. The Queue invariant carries
// over per lane: Enqueue never blocks, backpressure never reaches a
// protocol loop, and a destination's acks are sent in enqueue order.
//
// When a TrySend hook is configured, an idle lane (nothing queued, no
// drain in flight) attempts the non-blocking send right on the
// enqueueing goroutine and skips the queue entirely — zero handoffs,
// zero wakeups. The idle check happens under the lane lock, which is
// what keeps the fast path from overtaking queued acks: the moment
// anything is queued or a drain batch is in flight, new acks join the
// queue behind it.
type Sharded[K ~uint32, T any] struct {
	// send performs the real (possibly blocking) delivery; it runs only
	// on lane drain goroutines.
	send func(K, T) error
	// trySend, when non-nil, attempts a provably non-blocking delivery
	// on the enqueueing goroutine; false means "not deliverable without
	// blocking", and the item falls to the lane queue.
	trySend func(K, T) bool
	// onError observes a failed send (counters); may be nil.
	onError func(K, error)

	stopc   chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	// stripes spread the lane lookup so concurrent enqueues for
	// different clients do not serialize on one map mutex. A lookup hit
	// is a read-lock and a map read: no allocation (the strict gate),
	// unlike a sync.Map whose boxed keys allocate per Load.
	stripes [laneStripes]laneStripe[K, T]

	fast   atomic.Uint64 // acks delivered by the non-blocking fast path
	queued atomic.Uint64 // acks that went through a lane queue
	lanes  atomic.Uint64 // lanes ever created
}

// laneStripes is the lane-map fanout. Lookups take a read lock, so the
// stripe count only matters for lane creation and the (rare) write
// lock; 64 matches shard.DefaultShards.
const laneStripes = 64

type laneStripe[K ~uint32, T any] struct {
	mu sync.RWMutex
	m  map[K]*lane[K, T]
}

// lane is one destination's FIFO ack queue plus its drain goroutine.
type lane[K ~uint32, T any] struct {
	s   *Sharded[K, T]
	key K

	mu sync.Mutex
	// items is the queued backlog; spare is the drained batch's backing
	// array handed back for reuse, so steady-state enqueue does not
	// allocate even while a drain is consuming.
	items, spare []T
	// busy is true from the moment a drain batch is taken until it is
	// fully sent; the fast path stays off while it is set, preserving
	// per-destination FIFO order.
	busy   bool
	notify chan struct{}
}

// NewSharded returns a started sharded sender. send performs the real
// delivery (lane goroutines only); trySend, when non-nil, is the
// non-blocking fast path attempted from the enqueueing goroutine;
// onError observes failed sends. Stop tears every lane down.
func NewSharded[K ~uint32, T any](send func(K, T) error, trySend func(K, T) bool, onError func(K, error)) *Sharded[K, T] {
	s := &Sharded[K, T]{
		send:    send,
		trySend: trySend,
		onError: onError,
		stopc:   make(chan struct{}),
	}
	for i := range s.stripes {
		s.stripes[i].m = make(map[K]*lane[K, T])
	}
	return s
}

// stripe returns the stripe owning key.
func (s *Sharded[K, T]) stripe(key K) *laneStripe[K, T] {
	h := uint32(key) * 2654435761
	return &s.stripes[(h>>16^h)%laneStripes]
}

// Enqueue hands one item to the destination's lane; it never blocks.
// After Stop the item is dropped — the owner is tearing down and its
// endpoint is going away with it.
func (s *Sharded[K, T]) Enqueue(key K, item T) {
	st := s.stripe(key)
	st.mu.RLock()
	ln := st.m[key]
	st.mu.RUnlock()
	if ln == nil {
		ln = s.makeLane(st, key)
		if ln == nil {
			return // stopped
		}
	}
	ln.enqueue(item)
}

// makeLane creates (or races to find) the lane for key and starts its
// drain goroutine. Returns nil when the sender has stopped: goroutine
// creation must not race Stop's Wait.
func (s *Sharded[K, T]) makeLane(st *laneStripe[K, T], key K) *lane[K, T] {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ln := st.m[key]; ln != nil {
		return ln
	}
	if s.stopped.Load() {
		return nil
	}
	ln := &lane[K, T]{s: s, key: key, notify: make(chan struct{}, 1)}
	st.m[key] = ln
	s.lanes.Add(1)
	s.wg.Add(1)
	go ln.drain()
	return ln
}

// enqueue adds one item to the lane, first attempting the non-blocking
// fast path when the lane is provably idle.
func (ln *lane[K, T]) enqueue(item T) {
	s := ln.s
	ln.mu.Lock()
	if !ln.busy && len(ln.items) == 0 && s.trySend != nil && s.trySend(ln.key, item) {
		ln.mu.Unlock()
		s.fast.Add(1)
		return
	}
	ln.items = append(ln.items, item)
	ln.mu.Unlock()
	s.queued.Add(1)
	select {
	case ln.notify <- struct{}{}:
	default:
	}
}

// drain sends the lane's backlog in enqueue order until Stop. Batches
// swap the queued slice against the spare one, so a lane in steady
// state recycles two backing arrays and never allocates.
func (ln *lane[K, T]) drain() {
	s := ln.s
	defer s.wg.Done()
	var zero T
	for {
		select {
		case <-ln.notify:
		case <-s.stopc:
			return
		}
		for {
			ln.mu.Lock()
			if len(ln.items) == 0 {
				ln.busy = false
				ln.mu.Unlock()
				break
			}
			batch := ln.items
			ln.items = ln.spare[:0]
			ln.spare = nil
			ln.busy = true
			ln.mu.Unlock()
			for i := range batch {
				select {
				case <-s.stopc:
					return
				default:
				}
				if err := s.send(ln.key, batch[i]); err != nil && s.onError != nil {
					s.onError(ln.key, err)
				}
				batch[i] = zero // drop item references before recycling
			}
			ln.mu.Lock()
			ln.spare = batch[:0]
			ln.mu.Unlock()
		}
	}
}

// Stop terminates every lane goroutine and waits for them. Items still
// queued (or enqueued later) are dropped; the owner is shutting down.
func (s *Sharded[K, T]) Stop() {
	if s.stopped.CompareAndSwap(false, true) {
		close(s.stopc)
	}
	s.wg.Wait()
}

// Stats reports how many acks went out via the non-blocking fast path
// versus through a lane queue, and how many lanes were ever created.
func (s *Sharded[K, T]) Stats() (fast, queued, lanes uint64) {
	return s.fast.Load(), s.queued.Load(), s.lanes.Load()
}

// PendingFor returns a copy of the destination's queued backlog
// (diagnostics and tests).
func (s *Sharded[K, T]) PendingFor(key K) []T {
	st := s.stripe(key)
	st.mu.RLock()
	ln := st.m[key]
	st.mu.RUnlock()
	if ln == nil {
		return nil
	}
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if len(ln.items) == 0 {
		return nil
	}
	return append([]T(nil), ln.items...)
}

package ackq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPendingReturnsCopy pins the Pending contract: the returned slice
// is a snapshot, detached from the queue's backing array. Run with
// -race this also proves a caller may iterate it while producers keep
// enqueueing.
func TestPendingReturnsCopy(t *testing.T) {
	q := New[int]()
	q.Enqueue(1)
	q.Enqueue(2)
	snap := q.Pending()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			q.Enqueue(100 + i)
		}
	}()
	for i := 0; i < 100; i++ {
		for j, v := range snap {
			if v != j+1 {
				t.Errorf("snapshot mutated: snap[%d] = %d", j, v)
			}
		}
	}
	<-done
	if len(snap) != 2 {
		t.Fatalf("snapshot grew to %d items", len(snap))
	}
}

// recorder collects delivered items per destination.
type recorder struct {
	mu   sync.Mutex
	seen map[uint32][]int
}

func newRecorder() *recorder { return &recorder{seen: make(map[uint32][]int)} }

func (r *recorder) record(to uint32, v int) {
	r.mu.Lock()
	r.seen[to] = append(r.seen[to], v)
	r.mu.Unlock()
}

// TestShardedPerClientFIFO is the FIFO-order property test: one
// producer per destination enqueues a numbered sequence, concurrently
// across many destinations, while a flaky fast path accepts an
// arbitrary subset of idle-lane deliveries. Whatever mix of fast-path
// and queued deliveries results, each destination must observe its own
// sequence complete and in order.
func TestShardedPerClientFIFO(t *testing.T) {
	const dests, items = 32, 300
	rec := newRecorder()
	var flake atomic.Uint64
	s := NewSharded[uint32, int](
		func(to uint32, v int) error {
			rec.record(to, v)
			return nil
		},
		func(to uint32, v int) bool {
			// Accept roughly every other idle-lane attempt, so both
			// paths interleave on every lane.
			if flake.Add(1)%2 == 0 {
				return false
			}
			rec.record(to, v)
			return true
		},
		nil,
	)
	var wg sync.WaitGroup
	for d := 0; d < dests; d++ {
		wg.Add(1)
		go func(d uint32) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				s.Enqueue(d, i)
			}
		}(uint32(d))
	}
	wg.Wait()
	waitDelivered(t, rec, dests, items)
	s.Stop()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	for d := uint32(0); d < dests; d++ {
		got := rec.seen[d]
		if len(got) != items {
			t.Fatalf("dest %d: delivered %d of %d", d, len(got), items)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("dest %d: position %d holds %d (FIFO violated)", d, i, v)
			}
		}
	}
	fast, queued, lanes := s.Stats()
	if fast+queued != dests*items {
		t.Fatalf("stats fast %d + queued %d != %d", fast, queued, dests*items)
	}
	if lanes != dests {
		t.Fatalf("lanes = %d, want %d", lanes, dests)
	}
}

// waitDelivered polls until every destination has all its items (the
// lane drains run asynchronously) or the deadline passes.
func waitDelivered(t *testing.T, rec *recorder, dests, items int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec.mu.Lock()
		done := len(rec.seen) == dests
		if done {
			for _, got := range rec.seen {
				if len(got) != items {
					done = false
					break
				}
			}
		}
		rec.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for deliveries")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedSlowDestinationIsolation wedges one destination's send
// forever and checks another destination's acks still flow — the
// isolation property the per-destination lanes exist for, impossible
// with one shared drain goroutine.
func TestShardedSlowDestinationIsolation(t *testing.T) {
	unwedge := make(chan struct{})
	fastDone := make(chan struct{})
	var fastSeen atomic.Uint64
	s := NewSharded[uint32, int](
		func(to uint32, v int) error {
			if to == 1 {
				<-unwedge // a client that never drains its connection
				return nil
			}
			if fastSeen.Add(1) == 100 {
				close(fastDone)
			}
			return nil
		},
		nil, // no fast path: every item must cross the wedged drain's world
		nil,
	)
	for i := 0; i < 10; i++ {
		s.Enqueue(1, i)
	}
	for i := 0; i < 100; i++ {
		s.Enqueue(2, i)
	}
	select {
	case <-fastDone:
	case <-time.After(5 * time.Second):
		t.Fatal("healthy destination starved behind the wedged one")
	}
	close(unwedge)
	s.Stop()
}

// TestShardedStopRace races Stop against a storm of concurrent
// enqueues creating lanes; run with -race it pins the teardown
// contract (no Add-after-Wait, no send on a closed channel, enqueues
// after Stop silently dropped).
func TestShardedStopRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		var delivered atomic.Uint64
		s := NewSharded[uint32, int](
			func(uint32, int) error {
				delivered.Add(1)
				return nil
			},
			nil,
			nil,
		)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					s.Enqueue(uint32((g*31+i)%64), i)
				}
			}(g)
		}
		close(start)
		s.Stop() // concurrent with the enqueues
		wg.Wait()
		// Post-stop enqueues must be inert.
		s.Enqueue(999, 1)
	}
}

// TestShardedErrorCounter pins the failure hook: failed sends are
// observed, successful ones are not, and a failure does not stop the
// lane from draining later items.
func TestShardedErrorCounter(t *testing.T) {
	errBoom := errors.New("boom")
	var fails atomic.Uint64
	var okDone sync.WaitGroup
	okDone.Add(2)
	s := NewSharded[uint32, int](
		func(to uint32, v int) error {
			if v == 1 {
				return errBoom
			}
			okDone.Done()
			return nil
		},
		nil,
		func(to uint32, err error) {
			if to != 7 || !errors.Is(err, errBoom) {
				t.Errorf("onError(%d, %v)", to, err)
			}
			fails.Add(1)
		},
	)
	s.Enqueue(7, 0)
	s.Enqueue(7, 1)
	s.Enqueue(7, 2)
	okDone.Wait()
	s.Stop()
	if fails.Load() != 1 {
		t.Fatalf("failures = %d, want 1", fails.Load())
	}
}

// TestShardedFastPathExclusive checks an always-willing fast path keeps
// every idle-lane delivery off the queue, and that the counters see it.
func TestShardedFastPathExclusive(t *testing.T) {
	rec := newRecorder()
	s := NewSharded[uint32, int](
		func(to uint32, v int) error {
			t.Errorf("queued send of %d/%d despite always-ready fast path", to, v)
			return nil
		},
		func(to uint32, v int) bool {
			rec.record(to, v)
			return true
		},
		nil,
	)
	// Single producer: the lane is provably idle at each enqueue.
	for i := 0; i < 50; i++ {
		s.Enqueue(3, i)
	}
	s.Stop()
	fast, queued, _ := s.Stats()
	if fast != 50 || queued != 0 {
		t.Fatalf("fast %d queued %d, want 50/0", fast, queued)
	}
}

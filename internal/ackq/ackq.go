// Package ackq provides the client-acknowledgment queue shared by the
// servers that must never block their protocol loops on a client
// connection: an unbounded queue with a non-blocking Enqueue and a
// notification channel a dedicated sender goroutine drains. The queue
// is deliberately unbounded — backpressure toward the protocol loop is
// exactly the coupling it exists to remove; a slow or dead client costs
// memory proportional to its unacknowledged operations, never ring or
// chain progress.
package ackq

import "sync"

// Queue is an unbounded multi-producer ack queue. Construct with New
// before draining; the zero value supports Enqueue only (handy in
// tests that never start a drain goroutine).
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	notify chan struct{}
}

// New returns a drainable queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.Init()
	return q
}

// Init prepares an embedded zero-value queue for draining.
func (q *Queue[T]) Init() {
	q.notify = make(chan struct{}, 1)
}

// Enqueue adds one item; it never blocks.
func (q *Queue[T]) Enqueue(item T) {
	q.mu.Lock()
	q.items = append(q.items, item)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Pending returns a copy of the queued items not yet taken by a drain
// batch (diagnostics and tests). It must copy: returning the live slice
// would let a concurrent Enqueue append into the same backing array the
// caller is iterating.
func (q *Queue[T]) Pending() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	return append([]T(nil), q.items...)
}

// Drain sends queued items through send until stop closes, batching
// under one lock acquisition per wakeup. stop is re-checked between
// items so a long backlog cannot delay shutdown.
func (q *Queue[T]) Drain(stop <-chan struct{}, send func(T)) {
	for {
		select {
		case <-q.notify:
		case <-stop:
			return
		}
		for {
			q.mu.Lock()
			batch := q.items
			q.items = nil
			q.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			for _, item := range batch {
				select {
				case <-stop:
					return
				default:
				}
				send(item)
			}
		}
	}
}

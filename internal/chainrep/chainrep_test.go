package chainrep

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/transport"
	"repro/internal/wire"
)

type fixture struct {
	t     *testing.T
	net   *transport.MemNetwork
	chain []wire.ProcessID

	mu   sync.Mutex
	next wire.ProcessID
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	f := &fixture{t: t, net: transport.NewMemNetwork(transport.MemNetworkOptions{}), next: 1000}
	for i := 1; i <= n; i++ {
		f.chain = append(f.chain, wire.ProcessID(i))
	}
	for _, id := range f.chain {
		ep, err := f.net.Register(id)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ep, f.chain)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(func() {
			srv.Stop()
			_ = ep.Close()
		})
	}
	return f
}

func (f *fixture) client() *Client {
	f.t.Helper()
	f.mu.Lock()
	f.next++
	id := f.next
	f.mu.Unlock()
	ep, err := f.net.Register(id)
	if err != nil {
		f.t.Fatal(err)
	}
	cl, err := NewClient(ep, f.chain, 5*time.Second)
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() {
		_ = cl.Close()
		_ = ep.Close()
	})
	return cl
}

func TestChainWriteThenRead(t *testing.T) {
	f := newFixture(t, 4)
	cl := f.client()
	ctx := context.Background()
	wtag, err := cl.Write(ctx, 0, []byte("chained"))
	if err != nil {
		t.Fatal(err)
	}
	got, rtag, err := cl.Read(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "chained" || rtag != wtag {
		t.Fatalf("read %q tag %s, want tag %s", got, rtag, wtag)
	}
}

func TestChainSingleServer(t *testing.T) {
	f := newFixture(t, 1)
	cl := f.client()
	ctx := context.Background()
	if _, err := cl.Write(ctx, 0, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	got, _, err := cl.Read(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "solo" {
		t.Fatalf("read %q", got)
	}
}

func TestChainWriteIsDurableBeforeAck(t *testing.T) {
	// The tail acks only after every server applied: the tail's read
	// must always reflect an acknowledged write.
	f := newFixture(t, 5)
	cl := f.client()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("v%d", i)
		if _, err := cl.Write(ctx, 0, []byte(v)); err != nil {
			t.Fatal(err)
		}
		got, _, err := cl.Read(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != v {
			t.Fatalf("after writing %q read %q", v, got)
		}
	}
}

func TestChainLinearizableHistory(t *testing.T) {
	f := newFixture(t, 3)
	ctx := context.Background()
	var mu sync.Mutex
	var ops []checker.Op
	add := func(op checker.Op) {
		mu.Lock()
		op.ID = len(ops)
		ops = append(ops, op)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		cl := f.client()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v := fmt.Sprintf("w%d-%d", w, i)
				start := time.Now().UnixNano()
				tg, err := cl.Write(ctx, 0, []byte(v))
				if err != nil {
					t.Errorf("write: %v", err)
					return
				}
				add(checker.Op{Kind: checker.KindWrite, Value: v, Start: start, End: time.Now().UnixNano(), Tag: tg})
			}
		}()
	}
	for r := 0; r < 2; r++ {
		cl := f.client()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				start := time.Now().UnixNano()
				v, tg, err := cl.Read(ctx, 0)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				add(checker.Op{Kind: checker.KindRead, Value: string(v), Start: start, End: time.Now().UnixNano(), Tag: tg})
			}
		}()
	}
	wg.Wait()
	if err := checker.CheckTagged(ops); err != nil {
		t.Fatalf("chain history not atomic: %v", err)
	}
}

func TestChainMultiObject(t *testing.T) {
	f := newFixture(t, 3)
	cl := f.client()
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := cl.Write(ctx, wire.ObjectID(i), []byte(fmt.Sprintf("o%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		got, _, err := cl.Read(ctx, wire.ObjectID(i))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("o%d", i) {
			t.Fatalf("object %d holds %q", i, got)
		}
	}
}

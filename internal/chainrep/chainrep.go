// Package chainrep implements chain replication (van Renesse & Schneider,
// OSDI 2004), the paper's reference [28] and second baseline. Writes
// enter at the head of a chain, propagate through every server, and are
// acknowledged to the client by the tail; reads are served by the tail
// alone. Updates therefore enjoy the same pipelined high throughput as
// the ring algorithm — but every read hits the same single server, which
// is exactly the scalability limitation the paper's locally-served reads
// remove.
//
// This baseline intentionally omits chain reconfiguration on crashes (the
// original system delegates that to an external master); it exists for
// functional and performance comparison, not production use.
package chainrep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/tag"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is one chain replica.
type Server struct {
	ep    transport.Endpoint
	chain []wire.ProcessID
	pos   int

	objects map[wire.ObjectID]*state
	nextTS  uint64 // head only: write sequence

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// state is per-object replica state.
type state struct {
	tag   tag.Tag
	value []byte
}

// NewServer creates a chain server. The chain lists every server from
// head to tail and must be identical everywhere; ep.ID() must appear in
// it.
func NewServer(ep transport.Endpoint, chain []wire.ProcessID) (*Server, error) {
	pos := -1
	for i, id := range chain {
		if id == ep.ID() {
			pos = i
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("chainrep: %d not in chain %v", ep.ID(), chain)
	}
	return &Server{
		ep:      ep,
		chain:   append([]wire.ProcessID(nil), chain...),
		pos:     pos,
		objects: make(map[wire.ObjectID]*state),
		stopc:   make(chan struct{}),
	}, nil
}

// Start launches the server loop.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.loop()
}

// Stop terminates the server loop.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopc) })
	s.wg.Wait()
}

func (s *Server) isHead() bool { return s.pos == 0 }
func (s *Server) isTail() bool { return s.pos == len(s.chain)-1 }

// get returns per-object state, creating it lazily.
func (s *Server) get(id wire.ObjectID) *state {
	st, ok := s.objects[id]
	if !ok {
		st = &state{}
		s.objects[id] = st
	}
	return st
}

// loop is the single event loop.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case in := <-s.ep.Inbox():
			s.handle(in)
		case <-s.stopc:
			return
		}
	}
}

// handle dispatches one inbound frame.
func (s *Server) handle(in transport.Inbound) {
	env := in.Frame.Env
	switch env.Kind {
	case wire.KindWriteRequest:
		if !s.isHead() {
			return // clients must write to the head; drop otherwise
		}
		s.nextTS++
		t := tag.Tag{TS: s.nextTS, ID: uint32(s.ep.ID())}
		st := s.get(env.Object)
		st.tag, st.value = t, env.Value
		fwd := wire.Envelope{
			Kind:   wire.KindChainForward,
			Object: env.Object,
			Tag:    t,
			Origin: in.From, // the client to acknowledge at the tail
			ReqID:  env.ReqID,
			Value:  env.Value,
		}
		s.deliverOrForward(fwd)
	case wire.KindChainForward:
		st := s.get(env.Object)
		if env.Tag.After(st.tag) {
			st.tag, st.value = env.Tag, env.Value
		}
		s.deliverOrForward(env)
	case wire.KindReadRequest:
		if !s.isTail() {
			return // reads are served by the tail only
		}
		st := s.get(env.Object)
		ack := wire.Envelope{
			Kind:   wire.KindReadAck,
			Object: env.Object,
			Tag:    st.tag,
			ReqID:  env.ReqID,
			Value:  st.value,
		}
		_ = s.ep.Send(in.From, wire.NewFrame(ack))
	default:
		// Not part of this protocol.
	}
}

// deliverOrForward passes a write down the chain, or acknowledges the
// client when this server is the tail.
func (s *Server) deliverOrForward(env wire.Envelope) {
	if s.isTail() {
		ack := wire.Envelope{
			Kind:   wire.KindWriteAck,
			Object: env.Object,
			Tag:    env.Tag,
			ReqID:  env.ReqID,
		}
		_ = s.ep.Send(env.Origin, wire.NewFrame(ack))
		return
	}
	_ = s.ep.Send(s.chain[s.pos+1], wire.NewFrame(env))
}

// Client issues operations against a chain: writes to the head, reads to
// the tail.
type Client struct {
	ep    transport.Endpoint
	chain []wire.ProcessID
	tmo   time.Duration

	mu       sync.Mutex
	nextReq  uint64
	inflight map[uint64]chan wire.Envelope

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// ErrTimeout is returned when the chain does not answer in time.
var ErrTimeout = errors.New("chainrep: request timed out")

// NewClient creates a chain client. timeout zero means 2s.
func NewClient(ep transport.Endpoint, chain []wire.ProcessID, timeout time.Duration) (*Client, error) {
	if len(chain) == 0 {
		return nil, errors.New("chainrep: empty chain")
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	c := &Client{
		ep:       ep,
		chain:    append([]wire.ProcessID(nil), chain...),
		tmo:      timeout,
		inflight: make(map[uint64]chan wire.Envelope),
		stopc:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.receiverLoop()
	return c, nil
}

// Close stops the client.
func (c *Client) Close() error {
	c.stopOnce.Do(func() { close(c.stopc) })
	c.wg.Wait()
	return nil
}

// Write stores value via the head and waits for the tail's ack.
func (c *Client) Write(ctx context.Context, object wire.ObjectID, value []byte) (tag.Tag, error) {
	env := wire.Envelope{
		Kind:   wire.KindWriteRequest,
		Object: object,
		Value:  append([]byte(nil), value...),
	}
	reply, err := c.roundTrip(ctx, c.chain[0], env)
	if err != nil {
		return tag.Zero, err
	}
	return reply.Tag, nil
}

// Read fetches the value from the tail.
func (c *Client) Read(ctx context.Context, object wire.ObjectID) ([]byte, tag.Tag, error) {
	env := wire.Envelope{
		Kind:   wire.KindReadRequest,
		Object: object,
	}
	reply, err := c.roundTrip(ctx, c.chain[len(c.chain)-1], env)
	if err != nil {
		return nil, tag.Zero, err
	}
	return reply.Value, reply.Tag, nil
}

// roundTrip sends one request and waits for its correlated reply.
func (c *Client) roundTrip(ctx context.Context, to wire.ProcessID, env wire.Envelope) (wire.Envelope, error) {
	c.mu.Lock()
	c.nextReq++
	reqID := c.nextReq
	ch := make(chan wire.Envelope, 1)
	c.inflight[reqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.inflight, reqID)
		c.mu.Unlock()
	}()

	env.ReqID = reqID
	if err := c.ep.Send(to, wire.NewFrame(env)); err != nil {
		return wire.Envelope{}, fmt.Errorf("chainrep: send: %w", err)
	}
	timer := time.NewTimer(c.tmo)
	defer timer.Stop()
	select {
	case reply := <-ch:
		return reply, nil
	case <-timer.C:
		return wire.Envelope{}, ErrTimeout
	case <-ctx.Done():
		return wire.Envelope{}, ctx.Err()
	case <-c.stopc:
		return wire.Envelope{}, errors.New("chainrep: client closed")
	}
}

// receiverLoop routes replies by request id.
func (c *Client) receiverLoop() {
	defer c.wg.Done()
	for {
		select {
		case in := <-c.ep.Inbox():
			env := in.Frame.Env
			if env.Kind != wire.KindWriteAck && env.Kind != wire.KindReadAck {
				continue
			}
			c.mu.Lock()
			ch := c.inflight[env.ReqID]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- env:
				default:
				}
			}
		case <-c.stopc:
			return
		}
	}
}

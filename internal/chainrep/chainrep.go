// Package chainrep implements chain replication (van Renesse & Schneider,
// OSDI 2004), the paper's reference [28] and second baseline. Writes
// enter at the head of a chain, propagate through every server, and are
// acknowledged to the client by the tail; reads are served by the tail
// alone. Updates therefore enjoy the same pipelined high throughput as
// the ring algorithm — but every read hits the same single server, which
// is exactly the scalability limitation the paper's locally-served reads
// remove.
//
// The per-object state is sharded (internal/shard) and tail reads are
// served by a small worker pool off the event loop, mirroring the main
// server's architecture, so hot comparisons against this baseline
// measure the protocol's single-tail bottleneck rather than a
// single-goroutine implementation artifact. The client likewise stripes
// its in-flight table so concurrent callers sharing one client do not
// serialize on a global mutex.
//
// This baseline intentionally omits chain reconfiguration on crashes (the
// original system delegates that to an external master); it exists for
// functional and performance comparison, not production use.
package chainrep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ackq"
	"repro/internal/reqtab"
	"repro/internal/shard"
	"repro/internal/tag"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is one chain replica.
type Server struct {
	ep    transport.Endpoint
	chain []wire.ProcessID
	pos   int

	// objects is the per-object replica state, sharded by ObjectID hash;
	// every access happens under the owning shard's lock. The event loop
	// writes (head ingest, forward apply) and the read workers read, so
	// a burst of tail reads no longer serializes behind chain updates on
	// one structure.
	objects *shard.Map[wire.ObjectID, *state]
	nextTS  uint64 // head only: write sequence, loop-confined

	// readc feeds tail reads to the worker pool; a full queue falls back
	// to inline handling on the loop.
	readc chan readReq

	// acks is the sharded per-client ack sender (tail only in practice:
	// the tail acknowledges writes and answers reads). The event loop
	// and read workers never block on a client connection, and one slow
	// client delays only its own acks — mirroring the main server so
	// cross-protocol comparisons measure the single-tail bottleneck,
	// not ack plumbing. Chain forwards keep the direct blocking Send:
	// backpressure from the successor is the chain's pipelining model.
	acks *ackq.Sharded[wire.ProcessID, wire.Envelope]
	// ackFails counts client acks whose transport send failed.
	ackFails atomic.Uint64

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// state is per-object replica state, guarded by its shard lock.
type state struct {
	tag   tag.Tag
	value []byte
}

// readReq is one tail read dispatched to the worker pool.
type readReq struct {
	from   wire.ProcessID
	reqID  uint64
	object wire.ObjectID
}

// readWorkers is the tail's read-pool size, matching the main server's
// default read concurrency.
func readWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	return n
}

// NewServer creates a chain server. The chain lists every server from
// head to tail and must be identical everywhere; ep.ID() must appear in
// it.
func NewServer(ep transport.Endpoint, chain []wire.ProcessID) (*Server, error) {
	pos := -1
	for i, id := range chain {
		if id == ep.ID() {
			pos = i
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("chainrep: %d not in chain %v", ep.ID(), chain)
	}
	s := &Server{
		ep:      ep,
		chain:   append([]wire.ProcessID(nil), chain...),
		pos:     pos,
		objects: shard.New[wire.ObjectID, *state](0),
		stopc:   make(chan struct{}),
	}
	var try func(wire.ProcessID, wire.Envelope) bool
	if ts, ok := ep.(transport.TrySender); ok {
		try = func(to wire.ProcessID, env wire.Envelope) bool {
			return ts.TrySend(to, wire.NewFrame(env))
		}
	}
	s.acks = ackq.NewSharded(
		func(to wire.ProcessID, env wire.Envelope) error {
			return s.ep.Send(to, wire.NewFrame(env))
		},
		try,
		func(wire.ProcessID, error) { s.ackFails.Add(1) },
	)
	return s, nil
}

// AckSendFailures returns the number of client acks dropped because the
// transport send failed; a happy-path cluster reads 0.
func (s *Server) AckSendFailures() uint64 { return s.ackFails.Load() }

// Start launches the server loop and, on the tail, the read workers.
func (s *Server) Start() {
	if s.isTail() {
		workers := readWorkers()
		s.readc = make(chan readReq, 4*workers)
		s.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go s.readWorker()
		}
	}
	s.wg.Add(1)
	go s.loop()
}

// Stop terminates the server goroutines and the ack lanes.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopc) })
	s.wg.Wait()
	s.acks.Stop()
}

func (s *Server) isHead() bool { return s.pos == 0 }
func (s *Server) isTail() bool { return s.pos == len(s.chain)-1 }

// lockedState returns the state for an object with its shard locked,
// creating it on first use; the caller unlocks.
func (s *Server) lockedState(id wire.ObjectID) (*shard.Shard[wire.ObjectID, *state], *state) {
	sh := s.objects.Shard(id)
	sh.Lock()
	return sh, sh.GetOrCreate(id, func() *state { return &state{} })
}

// loop is the single event loop for chain traffic.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case in := <-s.ep.Inbox():
			s.handle(in)
		case <-s.stopc:
			return
		}
	}
}

// readWorker serves dispatched tail reads off the event loop.
func (s *Server) readWorker() {
	defer s.wg.Done()
	for {
		select {
		case rr := <-s.readc:
			s.serveRead(rr)
		case <-s.stopc:
			return
		}
	}
}

// serveRead answers one tail read under the object's shard lock; the
// ack leaves through the client's lane, so a blocked client connection
// never wedges a read worker.
func (s *Server) serveRead(rr readReq) {
	sh, st := s.lockedState(rr.object)
	ack := wire.Envelope{
		Kind:   wire.KindReadAck,
		Object: rr.object,
		Tag:    st.tag,
		ReqID:  rr.reqID,
		Value:  st.value,
	}
	sh.Unlock()
	s.acks.Enqueue(rr.from, ack)
}

// handle dispatches one inbound frame.
func (s *Server) handle(in transport.Inbound) {
	env := in.Frame.Env
	switch env.Kind {
	case wire.KindWriteRequest:
		if !s.isHead() {
			return // clients must write to the head; drop otherwise
		}
		s.nextTS++
		t := tag.Tag{TS: s.nextTS, ID: uint32(s.ep.ID())}
		sh, st := s.lockedState(env.Object)
		st.tag, st.value = t, env.Value
		sh.Unlock()
		fwd := wire.Envelope{
			Kind:   wire.KindChainForward,
			Object: env.Object,
			Tag:    t,
			Origin: in.From, // the client to acknowledge at the tail
			ReqID:  env.ReqID,
			Value:  env.Value,
		}
		s.deliverOrForward(fwd)
	case wire.KindChainForward:
		sh, st := s.lockedState(env.Object)
		if env.Tag.After(st.tag) {
			st.tag, st.value = env.Tag, env.Value
		}
		sh.Unlock()
		s.deliverOrForward(env)
	case wire.KindReadRequest:
		if !s.isTail() {
			return // reads are served by the tail only
		}
		rr := readReq{from: in.From, reqID: env.ReqID, object: env.Object}
		if s.readc != nil {
			select {
			case s.readc <- rr:
				return
			default:
			}
		}
		s.serveRead(rr)
	default:
		// Not part of this protocol.
	}
}

// deliverOrForward passes a write down the chain, or acknowledges the
// client when this server is the tail (through the client's ack lane:
// the event loop must keep applying chain forwards even when the
// acknowledged client is slow).
func (s *Server) deliverOrForward(env wire.Envelope) {
	if s.isTail() {
		s.acks.Enqueue(env.Origin, wire.Envelope{
			Kind:   wire.KindWriteAck,
			Object: env.Object,
			Tag:    env.Tag,
			ReqID:  env.ReqID,
		})
		return
	}
	_ = s.ep.Send(s.chain[s.pos+1], wire.NewFrame(env))
}

// Client issues operations against a chain: writes to the head, reads to
// the tail. It is safe for concurrent use; the in-flight table is
// striped so concurrent callers do not serialize on one mutex.
type Client struct {
	ep    transport.Endpoint
	chain []wire.ProcessID
	tmo   time.Duration

	nextReq  atomic.Uint64
	inflight reqtab.Table[chan wire.Envelope]

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// ErrTimeout is returned when the chain does not answer in time.
var ErrTimeout = errors.New("chainrep: request timed out")

// NewClient creates a chain client. timeout zero means 2s.
func NewClient(ep transport.Endpoint, chain []wire.ProcessID, timeout time.Duration) (*Client, error) {
	if len(chain) == 0 {
		return nil, errors.New("chainrep: empty chain")
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	c := &Client{
		ep:    ep,
		chain: append([]wire.ProcessID(nil), chain...),
		tmo:   timeout,
		stopc: make(chan struct{}),
	}
	c.inflight.Init()
	c.wg.Add(1)
	go c.receiverLoop()
	return c, nil
}

// Close stops the client.
func (c *Client) Close() error {
	c.stopOnce.Do(func() { close(c.stopc) })
	c.wg.Wait()
	return nil
}

// Write stores value via the head and waits for the tail's ack.
func (c *Client) Write(ctx context.Context, object wire.ObjectID, value []byte) (tag.Tag, error) {
	env := wire.Envelope{
		Kind:   wire.KindWriteRequest,
		Object: object,
		Value:  append([]byte(nil), value...),
	}
	reply, err := c.roundTrip(ctx, c.chain[0], env)
	if err != nil {
		return tag.Zero, err
	}
	return reply.Tag, nil
}

// Read fetches the value from the tail.
func (c *Client) Read(ctx context.Context, object wire.ObjectID) ([]byte, tag.Tag, error) {
	env := wire.Envelope{
		Kind:   wire.KindReadRequest,
		Object: object,
	}
	reply, err := c.roundTrip(ctx, c.chain[len(c.chain)-1], env)
	if err != nil {
		return nil, tag.Zero, err
	}
	return reply.Value, reply.Tag, nil
}

// roundTrip sends one request and waits for its correlated reply.
func (c *Client) roundTrip(ctx context.Context, to wire.ProcessID, env wire.Envelope) (wire.Envelope, error) {
	reqID := c.nextReq.Add(1)
	ch := make(chan wire.Envelope, 1)
	c.inflight.Put(reqID, ch)
	defer c.inflight.Delete(reqID)

	env.ReqID = reqID
	if err := c.ep.Send(to, wire.NewFrame(env)); err != nil {
		return wire.Envelope{}, fmt.Errorf("chainrep: send: %w", err)
	}
	timer := time.NewTimer(c.tmo)
	defer timer.Stop()
	select {
	case reply := <-ch:
		return reply, nil
	case <-timer.C:
		return wire.Envelope{}, ErrTimeout
	case <-ctx.Done():
		return wire.Envelope{}, ctx.Err()
	case <-c.stopc:
		return wire.Envelope{}, errors.New("chainrep: client closed")
	}
}

// receiverLoop routes replies by request id.
func (c *Client) receiverLoop() {
	defer c.wg.Done()
	for {
		select {
		case in := <-c.ep.Inbox():
			env := in.Frame.Env
			if env.Kind != wire.KindWriteAck && env.Kind != wire.KindReadAck {
				continue
			}
			if ch := c.inflight.Get(env.ReqID); ch != nil {
				select {
				case ch <- env:
				default:
				}
			}
		case <-c.stopc:
			return
		}
	}
}

package chainrep

import (
	"context"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// BenchmarkChainTailReads measures concurrent tail reads through one
// shared client: the path the sharded object map, the tail's read
// workers, and the striped in-flight table exist for. Before the
// sharding, every parallel reader serialized twice — on the client's
// global mutex and on the tail's single event loop.
func BenchmarkChainTailReads(b *testing.B) {
	net := transport.NewMemNetwork(transport.MemNetworkOptions{})
	chain := []wire.ProcessID{1, 2, 3}
	for _, id := range chain {
		ep, err := net.Register(id)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := NewServer(ep, chain)
		if err != nil {
			b.Fatal(err)
		}
		srv.Start()
		b.Cleanup(func() {
			srv.Stop()
			_ = ep.Close()
		})
	}
	ep, err := net.Register(1000)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := NewClient(ep, chain, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = cl.Close()
		_ = ep.Close()
	})

	ctx := context.Background()
	const objects = 8
	for obj := 0; obj < objects; obj++ {
		if _, err := cl.Write(ctx, wire.ObjectID(obj), []byte("seed")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		obj := wire.ObjectID(0)
		for pb.Next() {
			if _, _, err := cl.Read(ctx, obj); err != nil {
				b.Error(err)
				return
			}
			obj = (obj + 1) % objects
		}
	})
}
